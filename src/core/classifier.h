// Performance-based characterization of cloud servers (§VI-A, §IV-C.1).
//
// For each instance type, a fresh simulated server is stressed with the
// concurrent-mode workload (bursts of n simultaneous random-pool requests,
// one burst per minute of cool-down) at rising load levels.  The largest
// level whose mean response time stays under the administrator's bound
// (default 500 ms) is the type's capacity; types are then sorted by
// capacity and clustered into acceleration groups:
//
//  * same capacity bucket  -> same group ("instances with the same
//    capacity are assigned to the same group");
//  * inside a bucket, a clearly faster solo response splits a new, higher
//    level (how c4.8xlarge "surpassed our previous acceleration levels"
//    and became level 4);
//  * a type beaten on capacity or high-load latency by a strictly cheaper
//    type is demoted to group 0 — the paper's t2.nano/t2.micro anomaly
//    handling ("we assigned a micro server in a lower acceleration level
//    (group 0)").
#pragma once

#include <span>

#include "cloud/instance.h"
#include "cloud/instance_type.h"
#include "core/acceleration.h"
#include "tasks/task.h"

namespace mca::core {

/// Knobs of the characterization methodology (§VI-A.1 defaults).
struct classifier_config {
  /// Administrator's minimum level of acceleration: the response bound.
  double response_bound_ms = 500.0;
  /// Concurrent-user levels to test (paper: 1 and 10..100 step 10).
  std::vector<std::size_t> load_levels =
      {1, 10, 20, 30, 40, 50, 60, 70, 80, 90, 100};
  /// Bursts per load level (the paper runs 3 h per server; a handful of
  /// bursts per level already gives stable means in simulation).
  std::size_t rounds_per_level = 5;
  /// Cool-down between bursts.
  double burst_gap_ms = 60'000.0;
  /// Two types in one capacity bucket split into different groups when
  /// their solo means differ by more than this fraction.
  double solo_split_tolerance = 0.15;
  /// RNG seed for workload draws and service jitter.
  std::uint64_t seed = 1234;
  /// Optional t2 CPU-credit model during characterization.
  cloud::instance::options instance_options{};
};

/// Benchmarks one instance type (one simulated server, all load levels).
type_characterization characterize_type(const cloud::instance_type& type,
                                        const tasks::task_pool& pool,
                                        const classifier_config& config);

/// Benchmarks and clusters a catalog into acceleration groups.  Group 0 is
/// emitted (possibly empty) for demoted anomalies; regular levels start
/// at 1, ordered by rising capability.
acceleration_map classify(std::span<const cloud::instance_type> types,
                          const tasks::task_pool& pool,
                          const classifier_config& config);

}  // namespace mca::core
