// Workload prediction (§IV-B): edit-distance nearest neighbour over the
// knowledge base of time slots.
//
// Given the current slot t_h, the predictor computes P = { Δ(t_h, t_i) }
// over the stored history and approximates the next slot from the best
// match.  Two readings of the paper's §IV-B.2 are implemented (see
// DESIGN.md §5):
//   * successor — predict the slot *after* the best match (default);
//   * match     — predict the best-matching slot itself (the literal text).
// Because the forecast is always a slot drawn from history, "dramatically
// growing loads are only ever matched to the largest load seen in the near
// history", making allocation conservative — exactly the paper's remark.
#pragma once

#include <cstddef>
#include <optional>
#include <span>
#include <vector>

#include "trace/time_slot.h"

namespace mca::core {

/// Which slot the nearest-neighbour lookup forecasts.
enum class prediction_mode { successor, match };

const char* to_string(prediction_mode m) noexcept;

/// The adaptive model's prediction half.
class workload_predictor {
 public:
  explicit workload_predictor(prediction_mode mode = prediction_mode::successor)
      : mode_{mode} {}

  /// Replaces the knowledge base.
  void set_history(std::vector<trace::time_slot> history);
  /// Appends one observed slot to the knowledge base.
  void observe(trace::time_slot slot);

  std::size_t history_size() const noexcept { return history_.size(); }
  prediction_mode mode() const noexcept { return mode_; }

  /// Forecast for the slot following `current`; nullopt when the knowledge
  /// base is too small (empty, or single-slot in successor mode).
  std::optional<trace::time_slot> predict_next(
      const trace::time_slot& current) const;

  /// Same forecast reduced to per-group user counts (the allocator input).
  std::optional<std::vector<std::size_t>> predict_counts(
      const trace::time_slot& current) const;

  /// Index of the history slot nearest to `current` (ties -> most recent);
  /// nullopt on an empty knowledge base.
  std::optional<std::size_t> nearest_index(
      const trace::time_slot& current) const;

 private:
  prediction_mode mode_;
  std::vector<trace::time_slot> history_;
};

/// Accuracy of one slot forecast: mean over groups of
/// 1 - |pred - actual| / max(pred, actual, 1), in [0,1].
/// Throws std::invalid_argument when the vectors' sizes differ or both are
/// empty.
double prediction_accuracy(std::span<const std::size_t> predicted,
                           std::span<const std::size_t> actual);

/// Walk-forward evaluation: using the chronologically first
/// `knowledge_size` slots as the knowledge base, forecast each following
/// transition and average the accuracy.  This is the Fig. 10a
/// "accuracy vs size of the data" curve.  Returns nullopt when history is
/// too short to score at least one transition.
std::optional<double> walk_forward_accuracy(
    std::span<const trace::time_slot> history, std::size_t knowledge_size,
    prediction_mode mode = prediction_mode::successor);

/// k-fold chronological cross-validation (the paper's 10-fold evaluation):
/// each fold is held out, the rest is the knowledge base, and transitions
/// inside the held-out fold are forecast and scored.
struct cross_validation_result {
  double mean_accuracy = 0.0;
  std::vector<double> fold_accuracy;
};

/// Throws std::invalid_argument when folds < 2 or history is too short.
cross_validation_result cross_validate(
    std::span<const trace::time_slot> history, std::size_t folds,
    prediction_mode mode = prediction_mode::successor);

}  // namespace mca::core
