#include "core/allocator.h"

#include <algorithm>
#include <cmath>
#include <optional>
#include <stdexcept>
#include <utility>

namespace mca::core {
namespace {

constexpr std::size_t kNoRow = static_cast<std::size_t>(-1);

/// Flattened variable: one ILP column per (group, candidate).
struct column {
  group_id group = 0;
  std::size_t candidate = 0;
};

/// Column layout shared by every allocation strategy: the flat column list
/// plus a per-group index so group-local work never scans all columns.
struct column_layout {
  std::vector<column> columns;
  std::vector<std::vector<std::size_t>> by_group;
};

column_layout flatten(const allocation_request& request) {
  column_layout layout;
  const std::size_t group_count = request.candidates_per_group.size();
  layout.by_group.resize(group_count);
  std::size_t total = 0;
  for (const auto& group : request.candidates_per_group) total += group.size();
  layout.columns.reserve(total);
  for (group_id g = 0; g < group_count; ++g) {
    const std::size_t candidates = request.candidates_per_group[g].size();
    layout.by_group[g].reserve(candidates);
    for (std::size_t c = 0; c < candidates; ++c) {
      layout.by_group[g].push_back(layout.columns.size());
      layout.columns.push_back({g, c});
    }
  }
  return layout;
}

const allocation_candidate& candidate_of(const allocation_request& request,
                                         const column_layout& layout,
                                         std::size_t col) {
  const column& c = layout.columns[col];
  return request.candidates_per_group[c.group][c.candidate];
}

/// Capacity-per-dollar figure of merit (free capacity counts as
/// infinitely good).
double value_density(const allocation_candidate& cand) {
  return cand.cost_per_hour <= 0.0
             ? 1e18
             : cand.capacity_per_instance / cand.cost_per_hour;
}

allocation_plan plan_from_counts(const allocation_request& request,
                                 const column_layout& layout,
                                 const std::vector<std::size_t>& counts) {
  allocation_plan plan;
  for (std::size_t i = 0; i < layout.columns.size(); ++i) {
    if (counts[i] == 0) continue;
    const auto& cand = candidate_of(request, layout, i);
    plan.entries.push_back({layout.columns[i].group, cand.type_name, counts[i]});
    plan.total_cost_per_hour +=
        cand.cost_per_hour * static_cast<double>(counts[i]);
  }
  return plan;
}

/// Capacity bought for a group by a counts vector.
double group_capacity(const allocation_request& request,
                      const column_layout& layout,
                      const std::vector<std::size_t>& counts, group_id g) {
  double capacity = 0.0;
  for (const std::size_t i : layout.by_group[g]) {
    capacity += candidate_of(request, layout, i).capacity_per_instance *
                static_cast<double>(counts[i]);
  }
  return capacity;
}

/// Margin-free rhs of group g's workload row: the group's own demand, or
/// the tail sum over groups >= g under the cumulative reading.
double row_demand(const allocation_request& shape,
                  std::span<const double> demand, group_id g) {
  if (!shape.cumulative_capacity) return demand[g];
  double total = 0.0;
  for (std::size_t h = g; h < demand.size(); ++h) total += demand[h];
  return total;
}

/// The shared ILP model of one deployment shape: columns per candidate,
/// per group a workload row plus a cardinality cut, the account-cap row
/// last.  `demand_row[g]` / `count_row[g]` locate group g's rows (kNoRow
/// when the group contributed no terms) so the batched allocator can
/// re-aim both rhs values without rebuilding.
///
/// The cardinality cut — sum of the row's instance counts >= ceil((demand
/// + margin) / K_max) — is implied by the workload row plus integrality,
/// so it never changes the optimum; what it changes is the LP bound.  A
/// group whose demand sits far below one instance's capacity (the margin
/// instance of an idle group, say) otherwise contributes demand/K of its
/// cost to the relaxation but a whole instance to any integer solution,
/// and branch & bound flounders in that gap for thousands of nodes (the
/// "groups off the capacity quantum" blowup): the cut closes it at the
/// root.
struct allocation_model {
  ilp::problem model;
  std::vector<std::size_t> demand_row;
  std::vector<std::size_t> count_row;
  /// Largest single-instance capacity among each workload row's columns.
  std::vector<double> max_capacity;
  std::size_t cap_row = kNoRow;
};

/// Rhs of group g's cardinality cut for a given workload-row rhs.
double count_row_rhs(double workload_rhs, double max_capacity) {
  if (workload_rhs <= 0.0 || max_capacity <= 0.0) return 0.0;
  return std::ceil(workload_rhs / max_capacity - 1e-9);
}

/// Whether the cardinality cut can tighten the LP for this demand: the
/// relaxation buys ~rhs / K* instances of the best capacity-per-dollar
/// candidate (capacity K*), so the cut binds only when that falls short
/// of the integer minimum ceil(rhs / K_max).  Groups whose demand dwarfs
/// a single instance fail this test, and their cut would be a dead
/// tableau row that only slows every pivot down.
bool count_row_binds(double workload_rhs, double best_value_capacity,
                     double max_capacity) {
  if (workload_rhs <= 0.0 || best_value_capacity <= 0.0) return false;
  return workload_rhs / best_value_capacity <
         count_row_rhs(workload_rhs, max_capacity) - 1e-9;
}

/// `all_cuts` emits every group's cardinality cut regardless of the
/// current demand — the batched allocator needs them in place because
/// later slots re-aim the rhs to demands where they do bind; one-shot
/// solves skip the dead ones.
allocation_model build_model(const allocation_request& request,
                             const column_layout& layout,
                             std::span<const double> demand, bool all_cuts) {
  allocation_model out;
  for (const auto& col : layout.columns) {
    const auto& cand = request.candidates_per_group[col.group][col.candidate];
    out.model.add_integer_variable(
        cand.cost_per_hour, 0.0,
        static_cast<double>(request.max_total_instances),
        cand.type_name + "@g" + std::to_string(col.group));
  }

  const std::size_t group_count = request.candidates_per_group.size();
  out.demand_row.assign(group_count, kNoRow);
  out.count_row.assign(group_count, kNoRow);
  out.max_capacity.assign(group_count, 0.0);
  for (group_id g = 0; g < group_count; ++g) {
    std::vector<ilp::linear_term> terms;
    if (request.cumulative_capacity) {
      // Faster groups may absorb this group's demand: sum capacity over
      // groups >= g.
      for (group_id h = g; h < group_count; ++h) {
        for (const std::size_t i : layout.by_group[h]) {
          terms.push_back(
              {i, candidate_of(request, layout, i).capacity_per_instance});
        }
      }
    } else {
      for (const std::size_t i : layout.by_group[g]) {
        terms.push_back(
            {i, candidate_of(request, layout, i).capacity_per_instance});
      }
    }
    if (terms.empty()) continue;
    std::vector<ilp::linear_term> count_terms;
    count_terms.reserve(terms.size());
    double best_value_capacity = 0.0;
    double best_value = -1.0;
    for (const auto& term : terms) {
      out.max_capacity[g] = std::max(out.max_capacity[g], term.coeff);
      count_terms.push_back({term.var, 1.0});
      const double value = value_density(candidate_of(request, layout, term.var));
      if (value > best_value) {
        best_value = value;
        best_value_capacity = term.coeff;
      }
    }
    const double rhs = row_demand(request, demand, g) + request.capacity_margin;
    out.demand_row[g] = out.model.constraint_count();
    out.model.add_constraint(std::move(terms), ilp::relation::greater_equal,
                             rhs, "workload_g" + std::to_string(g));
    if (all_cuts ||
        count_row_binds(rhs, best_value_capacity, out.max_capacity[g])) {
      out.count_row[g] = out.model.constraint_count();
      out.model.add_constraint(std::move(count_terms),
                               ilp::relation::greater_equal,
                               count_row_rhs(rhs, out.max_capacity[g]),
                               "min_count_g" + std::to_string(g));
    }
  }

  std::vector<ilp::linear_term> cap_terms;
  cap_terms.reserve(layout.columns.size());
  for (std::size_t i = 0; i < layout.columns.size(); ++i) {
    cap_terms.push_back({i, 1.0});
  }
  out.cap_row = out.model.constraint_count();
  out.model.add_constraint(std::move(cap_terms), ilp::relation::less_equal,
                           static_cast<double>(request.max_total_instances),
                           "account_cap");
  return out;
}

/// True when some group's demand has no capacity terms to cover it — the
/// structurally infeasible case that short-circuits to best effort.
bool uncoverable_demand(const allocation_request& shape,
                        const allocation_model& m,
                        std::span<const double> demand) {
  for (group_id g = 0; g < m.demand_row.size(); ++g) {
    if (m.demand_row[g] == kNoRow && row_demand(shape, demand, g) > 0.0) {
      return true;
    }
  }
  return false;
}

/// Rounds solver values into instance counts and assembles the plan.  A
/// tolerance-level negative relaxation value must clamp at zero: fed
/// straight through llround into the unsigned count it would wrap to a
/// huge allocation.
allocation_plan plan_from_values(const allocation_request& request,
                                 const column_layout& layout,
                                 const std::vector<double>& values,
                                 ilp::solve_status status) {
  std::vector<std::size_t> counts(layout.columns.size(), 0);
  for (std::size_t i = 0; i < layout.columns.size(); ++i) {
    counts[i] =
        static_cast<std::size_t>(std::llround(std::max(0.0, values[i])));
  }
  allocation_plan plan = plan_from_counts(request, layout, counts);
  plan.feasible = true;
  plan.status = status;
  return plan;
}

}  // namespace

std::size_t allocation_plan::total_instances() const noexcept {
  std::size_t total = 0;
  for (const auto& e : entries) total += e.count;
  return total;
}

std::size_t allocation_plan::count_of(group_id group,
                                      const std::string& type_name) const {
  for (const auto& e : entries) {
    if (e.group == group && e.type_name == type_name) return e.count;
  }
  return 0;
}

void validate(const allocation_request& request) {
  if (request.workload_per_group.size() !=
      request.candidates_per_group.size()) {
    throw std::invalid_argument{
        "allocation_request: workload/candidate group counts differ"};
  }
  if (request.workload_per_group.empty()) {
    throw std::invalid_argument{"allocation_request: no groups"};
  }
  if (request.max_total_instances == 0) {
    throw std::invalid_argument{"allocation_request: zero instance cap"};
  }
  for (const auto& group : request.candidates_per_group) {
    for (const auto& cand : group) {
      if (cand.capacity_per_instance <= 0.0) {
        throw std::invalid_argument{
            "allocation_request: non-positive candidate capacity"};
      }
      if (cand.cost_per_hour < 0.0) {
        throw std::invalid_argument{
            "allocation_request: negative candidate cost"};
      }
    }
  }
  for (double w : request.workload_per_group) {
    if (w < 0.0) {
      throw std::invalid_argument{"allocation_request: negative workload"};
    }
  }
}

allocation_plan allocate_ilp(const allocation_request& request) {
  return allocate_ilp(request, ilp::ilp_options{});
}

allocation_plan allocate_ilp(const allocation_request& request,
                             const ilp::ilp_options& opts) {
  validate(request);
  const column_layout layout = flatten(request);
  if (layout.columns.empty()) {
    throw std::invalid_argument{"allocate_ilp: no candidates at all"};
  }

  const allocation_model m = build_model(
      request, layout, request.workload_per_group, /*all_cuts=*/false);
  if (uncoverable_demand(request, m, request.workload_per_group)) {
    // Demand with no candidates is structurally infeasible.
    allocation_plan plan = allocate_best_effort(request);
    plan.status = ilp::solve_status::infeasible;
    return plan;
  }

  const ilp::solution solved = ilp::solve_ilp(m.model, opts);
  // An exhausted node budget still returns the best incumbent found — a
  // feasible integral plan, usually better than the greedy fill.  Only a
  // truly empty result (infeasible, unbounded, or a budget too small to
  // find any incumbent) falls back to best effort.
  const bool usable =
      solved.status == ilp::solve_status::optimal ||
      (solved.status == ilp::solve_status::iteration_limit &&
       !solved.values.empty());
  if (!usable) {
    allocation_plan plan = allocate_best_effort(request);
    plan.status = solved.status;
    return plan;
  }
  return plan_from_values(request, layout, solved.values, solved.status);
}

std::vector<double> demand_from_prediction(
    std::span<const std::size_t> predicted_counts, std::size_t group_count) {
  std::vector<double> demand(group_count, 0.0);
  for (std::size_t g = 0; g < group_count && g < predicted_counts.size();
       ++g) {
    demand[g] = static_cast<double>(predicted_counts[g]);
  }
  return demand;
}

allocation_plan allocate_greedy(const allocation_request& request) {
  validate(request);
  const column_layout layout = flatten(request);
  std::vector<std::size_t> counts(layout.columns.size(), 0);
  std::size_t budget = request.max_total_instances;
  bool feasible = true;

  const std::size_t group_count = request.workload_per_group.size();
  for (group_id g = 0; g < group_count; ++g) {
    const double demand =
        request.workload_per_group[g] + request.capacity_margin;
    double covered = 0.0;
    // Candidate order: best capacity-per-dollar first.
    std::vector<std::size_t> group_columns = layout.by_group[g];
    std::sort(group_columns.begin(), group_columns.end(),
              [&](std::size_t a, std::size_t b) {
                return value_density(candidate_of(request, layout, a)) >
                       value_density(candidate_of(request, layout, b));
              });
    for (const std::size_t i : group_columns) {
      const auto& cand = candidate_of(request, layout, i);
      while (covered < demand && budget > 0) {
        ++counts[i];
        --budget;
        covered += cand.capacity_per_instance;
      }
      // Stop scanning once the demand is met or the account cap is spent;
      // with no budget left the remaining candidates cannot contribute.
      if (covered >= demand || budget == 0) break;
    }
    if (covered < demand) feasible = false;
  }
  allocation_plan plan = plan_from_counts(request, layout, counts);
  plan.feasible = feasible;
  plan.best_effort = !feasible;
  plan.status =
      feasible ? ilp::solve_status::optimal : ilp::solve_status::infeasible;
  return plan;
}

allocation_plan allocate_static_peak(const allocation_request& request,
                                     double peak_workload) {
  if (peak_workload < 0.0) {
    throw std::invalid_argument{"allocate_static_peak: negative peak"};
  }
  allocation_request peaked = request;
  for (auto& w : peaked.workload_per_group) w = peak_workload;
  return allocate_greedy(peaked);
}

allocation_plan allocate_best_effort(const allocation_request& request) {
  validate(request);
  const column_layout layout = flatten(request);
  std::vector<std::size_t> counts(layout.columns.size(), 0);
  std::size_t budget = request.max_total_instances;

  // Each group's best capacity-per-dollar candidate never changes, so
  // resolve it once instead of rescanning every purchase iteration.
  const std::size_t group_count = request.workload_per_group.size();
  std::vector<std::size_t> best_column(group_count, layout.columns.size());
  for (group_id g = 0; g < group_count; ++g) {
    double best_value = -1.0;
    for (const std::size_t i : layout.by_group[g]) {
      const double value = value_density(candidate_of(request, layout, i));
      if (value > best_value) {
        best_value = value;
        best_column[g] = i;
      }
    }
  }

  // Round-robin over groups by remaining uncovered demand, always buying
  // the group's best capacity-per-dollar candidate, until the cap is spent
  // or everything is covered.
  std::vector<double> covered(group_count, 0.0);
  while (budget > 0) {
    group_id worst = group_count;
    double worst_gap = 0.0;
    for (group_id g = 0; g < group_count; ++g) {
      const double gap =
          request.workload_per_group[g] + request.capacity_margin - covered[g];
      if (gap > worst_gap && best_column[g] < layout.columns.size()) {
        worst_gap = gap;
        worst = g;
      }
    }
    if (worst == group_count) break;  // all demand covered
    const std::size_t buy = best_column[worst];
    ++counts[buy];
    --budget;
    covered[worst] += candidate_of(request, layout, buy).capacity_per_instance;
  }

  allocation_plan plan = plan_from_counts(request, layout, counts);
  plan.feasible = true;
  for (group_id g = 0; g < group_count; ++g) {
    if (group_capacity(request, layout, counts, g) <
        request.workload_per_group[g] + request.capacity_margin) {
      plan.feasible = false;
    }
  }
  plan.best_effort = true;
  plan.status = plan.feasible ? ilp::solve_status::optimal
                              : ilp::solve_status::infeasible;
  return plan;
}

// ---- batched multi-slot allocation ----------------------------------------

struct batched_allocator::impl {
  allocation_request shape;
  ilp::ilp_options opts;
  column_layout layout;
  allocation_model m;
  /// The persistent root tableau: built on the first ILP solve, then only
  /// rhs-synced + dual-resolved between slots.  Its variable bounds are
  /// never tightened — branch & bound works on copies.
  std::optional<ilp::dense_tableau> root;
  /// Previous slot's integral plan, fed to branch & bound as incumbent.
  std::vector<double> incumbent;
  std::size_t solves = 0;
  std::size_t warm = 0;
  obs::registry* obs = nullptr;

  /// The fully materialized single-slot request (for fallback paths that
  /// reuse the plain allocators).
  allocation_request with_demand(std::span<const double> demand,
                                 std::size_t cap) const {
    allocation_request request = shape;
    request.workload_per_group.assign(demand.begin(), demand.end());
    request.max_total_instances = cap;
    return request;
  }
};

batched_allocator::batched_allocator(allocation_request shape,
                                     ilp::ilp_options opts)
    : impl_{std::make_unique<impl>()} {
  shape.workload_per_group.assign(shape.candidates_per_group.size(), 0.0);
  validate(shape);
  impl_->shape = std::move(shape);
  impl_->opts = opts;
  impl_->layout = flatten(impl_->shape);
  if (impl_->layout.columns.empty()) {
    throw std::invalid_argument{"batched_allocator: no candidates at all"};
  }
  impl_->m = build_model(impl_->shape, impl_->layout,
                         impl_->shape.workload_per_group, /*all_cuts=*/true);
}

batched_allocator::batched_allocator(batched_allocator&&) noexcept = default;
batched_allocator& batched_allocator::operator=(batched_allocator&&) noexcept =
    default;
batched_allocator::~batched_allocator() = default;

std::size_t batched_allocator::group_count() const noexcept {
  return impl_->shape.candidates_per_group.size();
}

std::size_t batched_allocator::solves() const noexcept {
  return impl_->solves;
}

std::size_t batched_allocator::warm_solves() const noexcept {
  return impl_->warm;
}

void batched_allocator::set_observability(obs::registry* registry) noexcept {
  impl_->obs = registry;
}

allocation_plan batched_allocator::solve(
    std::span<const double> demand_per_group,
    std::size_t max_total_instances) {
  impl& im = *impl_;
  if (demand_per_group.size() != im.shape.candidates_per_group.size()) {
    throw std::invalid_argument{
        "batched_allocator: demand/group count mismatch"};
  }
  for (const double d : demand_per_group) {
    if (d < 0.0) {
      throw std::invalid_argument{"batched_allocator: negative demand"};
    }
  }
  const std::size_t cap =
      max_total_instances == 0
          ? im.shape.max_total_instances
          : std::min(max_total_instances, im.shape.max_total_instances);
  ++im.solves;
  if (im.obs) im.obs->add(obs::counter::ilp_solves);

  if (uncoverable_demand(im.shape, im.m, demand_per_group)) {
    if (im.obs) im.obs->add(obs::counter::ilp_best_effort);
    allocation_plan plan =
        allocate_best_effort(im.with_demand(demand_per_group, cap));
    plan.status = ilp::solve_status::infeasible;
    return plan;
  }

  // Re-aim the workload rows, their cardinality cuts, and the cap row.
  // The model mutates first so a cold rebuild inside resolve() (or the
  // first build) reads the same demands the incremental sync applies.
  for (group_id g = 0; g < im.m.demand_row.size(); ++g) {
    const std::size_t row = im.m.demand_row[g];
    if (row == kNoRow) continue;
    const double rhs = row_demand(im.shape, demand_per_group, g) +
                       im.shape.capacity_margin;
    im.m.model.set_constraint_rhs(row, rhs);
    if (im.root) {
      im.root->sync_constraint_rhs(row);
      if (im.obs) im.obs->add(obs::counter::ilp_rhs_reaims);
    }
    const std::size_t cut = im.m.count_row[g];
    if (cut == kNoRow) continue;
    im.m.model.set_constraint_rhs(cut,
                                  count_row_rhs(rhs, im.m.max_capacity[g]));
    if (im.root) {
      im.root->sync_constraint_rhs(cut);
      if (im.obs) im.obs->add(obs::counter::ilp_rhs_reaims);
    }
  }
  im.m.model.set_constraint_rhs(im.m.cap_row, static_cast<double>(cap));
  if (im.root) {
    im.root->sync_constraint_rhs(im.m.cap_row);
    if (im.obs) im.obs->add(obs::counter::ilp_rhs_reaims);
  }

  ilp::solve_status root_status;
  bool warm_solve = false;
  const std::size_t pivots_before = im.root ? im.root->pivots() : 0;
  if (!im.root) {
    im.root.emplace(im.m.model, im.opts.lp.tolerance);
    if (im.obs) im.obs->add(obs::counter::ilp_root_builds);
    root_status = im.root->solve(im.opts.lp);
  } else {
    root_status = im.root->resolve(im.opts.lp);
    warm_solve = true;
  }

  const bool seeded = !im.incumbent.empty();
  const ilp::solution solved = ilp::solve_ilp_warm(
      im.m.model, *im.root, root_status, im.opts,
      seeded ? &im.incumbent : nullptr);
  if (im.obs) {
    im.obs->add(obs::counter::ilp_bb_nodes, solved.iterations);
    im.obs->observe(obs::series::ilp_nodes_per_solve,
                    static_cast<double>(solved.iterations));
    im.obs->add(obs::counter::ilp_root_pivots,
                im.root->pivots() - pivots_before);
    if (seeded) im.obs->add(obs::counter::ilp_incumbent_seeds);
  }
  const bool usable =
      solved.status == ilp::solve_status::optimal ||
      (solved.status == ilp::solve_status::iteration_limit &&
       !solved.values.empty());
  if (!usable) {
    if (im.obs) im.obs->add(obs::counter::ilp_best_effort);
    allocation_plan plan =
        allocate_best_effort(im.with_demand(demand_per_group, cap));
    plan.status = solved.status;
    return plan;
  }
  if (warm_solve) {
    ++im.warm;
    if (im.obs) im.obs->add(obs::counter::ilp_warm_solves);
  }
  im.incumbent = solved.values;
  return plan_from_values(im.shape, im.layout, solved.values, solved.status);
}

std::vector<allocation_plan> allocate_ilp_batched(
    const allocation_request& shape,
    std::span<const std::vector<double>> demand_per_period,
    const ilp::ilp_options& opts) {
  batched_allocator allocator{shape, opts};
  std::vector<allocation_plan> plans;
  plans.reserve(demand_per_period.size());
  for (const auto& demand : demand_per_period) {
    plans.push_back(allocator.solve(demand));
  }
  return plans;
}

}  // namespace mca::core
