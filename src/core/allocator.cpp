#include "core/allocator.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace mca::core {
namespace {

/// Flattened variable: one ILP column per (group, candidate).
struct column {
  group_id group = 0;
  std::size_t candidate = 0;
};

/// Column layout shared by every allocation strategy: the flat column list
/// plus a per-group index so group-local work never scans all columns.
struct column_layout {
  std::vector<column> columns;
  std::vector<std::vector<std::size_t>> by_group;
};

column_layout flatten(const allocation_request& request) {
  column_layout layout;
  const std::size_t group_count = request.candidates_per_group.size();
  layout.by_group.resize(group_count);
  std::size_t total = 0;
  for (const auto& group : request.candidates_per_group) total += group.size();
  layout.columns.reserve(total);
  for (group_id g = 0; g < group_count; ++g) {
    const std::size_t candidates = request.candidates_per_group[g].size();
    layout.by_group[g].reserve(candidates);
    for (std::size_t c = 0; c < candidates; ++c) {
      layout.by_group[g].push_back(layout.columns.size());
      layout.columns.push_back({g, c});
    }
  }
  return layout;
}

const allocation_candidate& candidate_of(const allocation_request& request,
                                         const column_layout& layout,
                                         std::size_t col) {
  const column& c = layout.columns[col];
  return request.candidates_per_group[c.group][c.candidate];
}

/// Capacity-per-dollar figure of merit (free capacity counts as
/// infinitely good).
double value_density(const allocation_candidate& cand) {
  return cand.cost_per_hour <= 0.0
             ? 1e18
             : cand.capacity_per_instance / cand.cost_per_hour;
}

allocation_plan plan_from_counts(const allocation_request& request,
                                 const column_layout& layout,
                                 const std::vector<std::size_t>& counts) {
  allocation_plan plan;
  for (std::size_t i = 0; i < layout.columns.size(); ++i) {
    if (counts[i] == 0) continue;
    const auto& cand = candidate_of(request, layout, i);
    plan.entries.push_back({layout.columns[i].group, cand.type_name, counts[i]});
    plan.total_cost_per_hour +=
        cand.cost_per_hour * static_cast<double>(counts[i]);
  }
  return plan;
}

/// Capacity bought for a group by a counts vector.
double group_capacity(const allocation_request& request,
                      const column_layout& layout,
                      const std::vector<std::size_t>& counts, group_id g) {
  double capacity = 0.0;
  for (const std::size_t i : layout.by_group[g]) {
    capacity += candidate_of(request, layout, i).capacity_per_instance *
                static_cast<double>(counts[i]);
  }
  return capacity;
}

}  // namespace

std::size_t allocation_plan::total_instances() const noexcept {
  std::size_t total = 0;
  for (const auto& e : entries) total += e.count;
  return total;
}

std::size_t allocation_plan::count_of(group_id group,
                                      const std::string& type_name) const {
  for (const auto& e : entries) {
    if (e.group == group && e.type_name == type_name) return e.count;
  }
  return 0;
}

void validate(const allocation_request& request) {
  if (request.workload_per_group.size() !=
      request.candidates_per_group.size()) {
    throw std::invalid_argument{
        "allocation_request: workload/candidate group counts differ"};
  }
  if (request.workload_per_group.empty()) {
    throw std::invalid_argument{"allocation_request: no groups"};
  }
  if (request.max_total_instances == 0) {
    throw std::invalid_argument{"allocation_request: zero instance cap"};
  }
  for (const auto& group : request.candidates_per_group) {
    for (const auto& cand : group) {
      if (cand.capacity_per_instance <= 0.0) {
        throw std::invalid_argument{
            "allocation_request: non-positive candidate capacity"};
      }
      if (cand.cost_per_hour < 0.0) {
        throw std::invalid_argument{
            "allocation_request: negative candidate cost"};
      }
    }
  }
  for (double w : request.workload_per_group) {
    if (w < 0.0) {
      throw std::invalid_argument{"allocation_request: negative workload"};
    }
  }
}

allocation_plan allocate_ilp(const allocation_request& request) {
  return allocate_ilp(request, ilp::ilp_options{});
}

allocation_plan allocate_ilp(const allocation_request& request,
                             const ilp::ilp_options& opts) {
  validate(request);
  const column_layout layout = flatten(request);
  if (layout.columns.empty()) {
    throw std::invalid_argument{"allocate_ilp: no candidates at all"};
  }

  ilp::problem model;
  for (const auto& col : layout.columns) {
    const auto& cand = request.candidates_per_group[col.group][col.candidate];
    model.add_integer_variable(
        cand.cost_per_hour, 0.0,
        static_cast<double>(request.max_total_instances),
        cand.type_name + "@g" + std::to_string(col.group));
  }

  const std::size_t group_count = request.workload_per_group.size();
  for (group_id g = 0; g < group_count; ++g) {
    std::vector<ilp::linear_term> terms;
    double demand = 0.0;
    if (request.cumulative_capacity) {
      // Faster groups may absorb this group's demand: sum capacity and
      // workload over groups >= g.
      for (group_id h = g; h < group_count; ++h) {
        for (const std::size_t i : layout.by_group[h]) {
          terms.push_back(
              {i, candidate_of(request, layout, i).capacity_per_instance});
        }
        demand += request.workload_per_group[h];
      }
    } else {
      for (const std::size_t i : layout.by_group[g]) {
        terms.push_back(
            {i, candidate_of(request, layout, i).capacity_per_instance});
      }
      demand = request.workload_per_group[g];
    }
    if (terms.empty()) {
      if (demand > 0.0) {
        // Demand with no candidates is structurally infeasible.
        allocation_plan plan = allocate_best_effort(request);
        plan.status = ilp::solve_status::infeasible;
        return plan;
      }
      continue;
    }
    model.add_constraint(std::move(terms), ilp::relation::greater_equal,
                         demand + request.capacity_margin,
                         "workload_g" + std::to_string(g));
  }

  {
    std::vector<ilp::linear_term> cap_terms;
    cap_terms.reserve(layout.columns.size());
    for (std::size_t i = 0; i < layout.columns.size(); ++i) {
      cap_terms.push_back({i, 1.0});
    }
    model.add_constraint(std::move(cap_terms), ilp::relation::less_equal,
                         static_cast<double>(request.max_total_instances),
                         "account_cap");
  }

  const ilp::solution solved = ilp::solve_ilp(model, opts);
  // An exhausted node budget still returns the best incumbent found — a
  // feasible integral plan, usually better than the greedy fill.  Only a
  // truly empty result (infeasible, unbounded, or a budget too small to
  // find any incumbent) falls back to best effort.
  const bool usable =
      solved.status == ilp::solve_status::optimal ||
      (solved.status == ilp::solve_status::iteration_limit &&
       !solved.values.empty());
  if (!usable) {
    allocation_plan plan = allocate_best_effort(request);
    plan.status = solved.status;
    return plan;
  }

  std::vector<std::size_t> counts(layout.columns.size(), 0);
  for (std::size_t i = 0; i < layout.columns.size(); ++i) {
    // A tolerance-level negative relaxation value must clamp at zero: fed
    // straight through llround into the unsigned count it would wrap to a
    // huge allocation.
    counts[i] =
        static_cast<std::size_t>(std::llround(std::max(0.0, solved.values[i])));
  }
  allocation_plan plan = plan_from_counts(request, layout, counts);
  plan.feasible = true;
  plan.status = solved.status;
  return plan;
}

allocation_plan allocate_greedy(const allocation_request& request) {
  validate(request);
  const column_layout layout = flatten(request);
  std::vector<std::size_t> counts(layout.columns.size(), 0);
  std::size_t budget = request.max_total_instances;
  bool feasible = true;

  const std::size_t group_count = request.workload_per_group.size();
  for (group_id g = 0; g < group_count; ++g) {
    const double demand =
        request.workload_per_group[g] + request.capacity_margin;
    double covered = 0.0;
    // Candidate order: best capacity-per-dollar first.
    std::vector<std::size_t> group_columns = layout.by_group[g];
    std::sort(group_columns.begin(), group_columns.end(),
              [&](std::size_t a, std::size_t b) {
                return value_density(candidate_of(request, layout, a)) >
                       value_density(candidate_of(request, layout, b));
              });
    for (const std::size_t i : group_columns) {
      const auto& cand = candidate_of(request, layout, i);
      while (covered < demand && budget > 0) {
        ++counts[i];
        --budget;
        covered += cand.capacity_per_instance;
      }
      // Stop scanning once the demand is met or the account cap is spent;
      // with no budget left the remaining candidates cannot contribute.
      if (covered >= demand || budget == 0) break;
    }
    if (covered < demand) feasible = false;
  }
  allocation_plan plan = plan_from_counts(request, layout, counts);
  plan.feasible = feasible;
  plan.best_effort = !feasible;
  plan.status =
      feasible ? ilp::solve_status::optimal : ilp::solve_status::infeasible;
  return plan;
}

allocation_plan allocate_static_peak(const allocation_request& request,
                                     double peak_workload) {
  if (peak_workload < 0.0) {
    throw std::invalid_argument{"allocate_static_peak: negative peak"};
  }
  allocation_request peaked = request;
  for (auto& w : peaked.workload_per_group) w = peak_workload;
  return allocate_greedy(peaked);
}

allocation_plan allocate_best_effort(const allocation_request& request) {
  validate(request);
  const column_layout layout = flatten(request);
  std::vector<std::size_t> counts(layout.columns.size(), 0);
  std::size_t budget = request.max_total_instances;

  // Each group's best capacity-per-dollar candidate never changes, so
  // resolve it once instead of rescanning every purchase iteration.
  const std::size_t group_count = request.workload_per_group.size();
  std::vector<std::size_t> best_column(group_count, layout.columns.size());
  for (group_id g = 0; g < group_count; ++g) {
    double best_value = -1.0;
    for (const std::size_t i : layout.by_group[g]) {
      const double value = value_density(candidate_of(request, layout, i));
      if (value > best_value) {
        best_value = value;
        best_column[g] = i;
      }
    }
  }

  // Round-robin over groups by remaining uncovered demand, always buying
  // the group's best capacity-per-dollar candidate, until the cap is spent
  // or everything is covered.
  std::vector<double> covered(group_count, 0.0);
  while (budget > 0) {
    group_id worst = group_count;
    double worst_gap = 0.0;
    for (group_id g = 0; g < group_count; ++g) {
      const double gap =
          request.workload_per_group[g] + request.capacity_margin - covered[g];
      if (gap > worst_gap && best_column[g] < layout.columns.size()) {
        worst_gap = gap;
        worst = g;
      }
    }
    if (worst == group_count) break;  // all demand covered
    const std::size_t buy = best_column[worst];
    ++counts[buy];
    --budget;
    covered[worst] += candidate_of(request, layout, buy).capacity_per_instance;
  }

  allocation_plan plan = plan_from_counts(request, layout, counts);
  plan.feasible = true;
  for (group_id g = 0; g < group_count; ++g) {
    if (group_capacity(request, layout, counts, g) <
        request.workload_per_group[g] + request.capacity_margin) {
      plan.feasible = false;
    }
  }
  plan.best_effort = true;
  plan.status = plan.feasible ? ilp::solve_status::optimal
                              : ilp::solve_status::infeasible;
  return plan;
}

}  // namespace mca::core
