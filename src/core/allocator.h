// Dynamic resource allocation (§IV-C): the cheapest instance mix covering
// the predicted workload.
//
//     min  Σ x_s · c_s
//     s.t. Σ_{s ∈ group n} x_s · K_s  >  W_{a_n}      ∀ groups n    (2)
//          Σ x_s ≤ CC                                               (3)
//
// solved exactly with the in-repo branch-and-bound ILP solver (the paper
// uses R's lpSolveAPI).  Besides the ILP, three baselines are provided for
// the ablation bench: a cost-greedy heuristic, static peak provisioning,
// and best-effort filling for the infeasible case (workload beyond what CC
// instances can carry).
#pragma once

#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "ilp/branch_bound.h"
#include "obs/registry.h"
#include "util/ids.h"

namespace mca::core {

/// One allocatable instance type inside a group.
struct allocation_candidate {
  std::string type_name;
  double capacity_per_instance = 0.0;  ///< Ks: users/requests-per-min
  double cost_per_hour = 0.0;          ///< cs
};

/// The allocator's input for one provisioning period.
struct allocation_request {
  /// W_{a_n}: predicted workload per group, indexed by group id.
  std::vector<double> workload_per_group;
  /// Allocatable types per group, same indexing.
  std::vector<std::vector<allocation_candidate>> candidates_per_group;
  /// CC: the cloud account's instance cap (Amazon's default is 20).
  std::size_t max_total_instances = 20;
  /// Strict-inequality margin of constraint (2): bought capacity must be
  /// at least W + margin.  Workloads are integer user counts, so the
  /// default of 1 is exactly the paper's strict ">": a group with W=0
  /// still gets one instance and capacity exactly equal to W is not
  /// enough.
  double capacity_margin = 1.0;
  /// Cumulative reading of constraint (2): instances of faster groups may
  /// absorb slower groups' workload (see DESIGN.md §5).  Default strict
  /// per-group.
  bool cumulative_capacity = false;
};

/// Chosen instance counts.
struct allocation_plan {
  struct entry {
    group_id group = 0;
    std::string type_name;
    std::size_t count = 0;
  };
  std::vector<entry> entries;
  double total_cost_per_hour = 0.0;
  bool feasible = false;
  /// True when the plan is a best-effort fill of an infeasible request.
  bool best_effort = false;
  ilp::solve_status status = ilp::solve_status::infeasible;

  std::size_t total_instances() const noexcept;
  std::size_t count_of(group_id group, const std::string& type_name) const;
};

/// Validates a request (consistent sizes, positive capacities).
/// Throws std::invalid_argument on malformed input.
void validate(const allocation_request& request);

/// Widens predicted per-group user counts into the allocator's demand
/// vector (the W_{a_n} of constraint (2)): counts become doubles, groups
/// the prediction does not cover get zero.  This is THE derivation of
/// demand from predictor output — the monolithic slot boundary, the fleet
/// shards' demand digests, and the coordinator all share it, so a change
/// here moves every consumer together.
std::vector<double> demand_from_prediction(
    std::span<const std::size_t> predicted_counts, std::size_t group_count);

/// Exact ILP allocation.  When the request is infeasible under CC, falls
/// back to the best-effort fill (flagged in the plan).  If the solver's
/// node budget runs out with a feasible incumbent in hand, that incumbent
/// is used (status `iteration_limit` flags the unproven optimality); the
/// greedy fallback is reserved for truly empty results.
allocation_plan allocate_ilp(const allocation_request& request);

/// Same, with explicit solver knobs (node budget, tolerances).
allocation_plan allocate_ilp(const allocation_request& request,
                             const ilp::ilp_options& opts);

/// Greedy baseline: per group, pick the candidate with the best
/// capacity-per-dollar and buy enough of it; spill to the next-best type
/// when the account cap binds.
allocation_plan allocate_greedy(const allocation_request& request);

/// Static peak baseline: provision every group for `peak_workload` users
/// regardless of the prediction (what a deployment without the adaptive
/// model must do to stay safe).
allocation_plan allocate_static_peak(const allocation_request& request,
                                     double peak_workload);

/// Best-effort fill: maximize covered workload under the account cap,
/// then minimize cost among maximal covers (greedy approximation).
allocation_plan allocate_best_effort(const allocation_request& request);

/// Reusable batched allocator — the multi-slot `allocate_ilp` entry point.
///
/// Builds the ILP model ONCE from a fixed deployment shape (candidates per
/// group, account cap, margin, cumulative reading) and re-solves it for a
/// stream of per-slot demand vectors, touching only the workload rows'
/// right-hand sides between solves.  Consecutive solves keep one warm
/// tableau: the rhs move is applied in place (dense_tableau::
/// sync_constraint_rhs), the dual simplex repairs feasibility from the
/// previous optimal basis, and branch & bound is seeded with the previous
/// slot's plan as incumbent whenever it is still feasible — so slots whose
/// demands barely move cost a few dual pivots instead of a model build, a
/// two-phase solve, and a cold tree search.  Results are identical to
/// independent allocate_ilp calls (asserted by tests and the fleet bench).
class batched_allocator {
 public:
  /// `shape` fixes everything except the demands; its workload_per_group
  /// only sizes the group dimension (values are ignored).
  /// Throws std::invalid_argument on a malformed shape.
  explicit batched_allocator(allocation_request shape,
                             ilp::ilp_options opts = {});
  batched_allocator(batched_allocator&&) noexcept;
  batched_allocator& operator=(batched_allocator&&) noexcept;
  ~batched_allocator();

  /// Solves one slot against `demand_per_group` (one entry per group).
  /// `max_total_instances` tightens the account-cap row for this solve
  /// only (0 keeps the shape's cap; values above it are clamped down) —
  /// the fleet coordinator uses it to reserve instances already deployed
  /// on shards outside this allocation.  Infeasible slots fall back to
  /// the best-effort fill, exactly like allocate_ilp.  Throws
  /// std::invalid_argument on a size mismatch or a negative demand.
  allocation_plan solve(std::span<const double> demand_per_group,
                        std::size_t max_total_instances = 0);

  std::size_t group_count() const noexcept;
  std::size_t solves() const noexcept;
  /// Solves that reused the previous slot's tableau + incumbent (every
  /// solve after the first that stayed on the ILP path).
  std::size_t warm_solves() const noexcept;

  /// Attaches ILP solve-internals counters (solves, warm reuses, rhs
  /// re-aims, root builds/pivots, branch & bound nodes, incumbent seeds,
  /// best-effort fallbacks).  nullptr detaches; the pointer is not owned.
  void set_observability(obs::registry* registry) noexcept;

 private:
  struct impl;
  std::unique_ptr<impl> impl_;
};

/// One batched multi-period call: every period's allocation against a
/// shared model and warm-started tableau.  Equivalent to — but measurably
/// cheaper than — one allocate_ilp call per period (bench/fleet_scale
/// records both series).
std::vector<allocation_plan> allocate_ilp_batched(
    const allocation_request& shape,
    std::span<const std::vector<double>> demand_per_period,
    const ilp::ilp_options& opts = {});

}  // namespace mca::core
