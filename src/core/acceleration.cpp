#include "core/acceleration.h"

#include <stdexcept>

namespace mca::core {

acceleration_map::acceleration_map(std::vector<acceleration_group> groups)
    : groups_{std::move(groups)} {
  for (std::size_t i = 0; i < groups_.size(); ++i) {
    if (groups_[i].id != i) {
      throw std::invalid_argument{
          "acceleration_map: group ids must be dense and ordered"};
    }
  }
}

const acceleration_group& acceleration_map::group(group_id id) const {
  if (id >= groups_.size()) {
    throw std::out_of_range{"acceleration_map: unknown group"};
  }
  return groups_[id];
}

group_id acceleration_map::group_of(const std::string& type_name) const {
  for (const auto& g : groups_) {
    for (const auto& name : g.type_names) {
      if (name == type_name) return g.id;
    }
  }
  throw std::out_of_range{"acceleration_map: type '" + type_name +
                          "' not classified"};
}

bool acceleration_map::contains(const std::string& type_name) const noexcept {
  for (const auto& g : groups_) {
    for (const auto& name : g.type_names) {
      if (name == type_name) return true;
    }
  }
  return false;
}

group_id acceleration_map::max_group() const {
  if (groups_.empty()) {
    throw std::logic_error{"acceleration_map: no groups"};
  }
  return groups_.back().id;
}

}  // namespace mca::core
