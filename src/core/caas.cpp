#include "core/caas.h"

#include <limits>
#include <stdexcept>

namespace mca::core {
namespace {

const cloud::instance_type& find_type(
    const std::vector<cloud::instance_type>& types, const std::string& name) {
  for (const auto& t : types) {
    if (t.name == name) return t;
  }
  throw std::invalid_argument{"build_price_sheet: type '" + name +
                              "' not in the provided catalog"};
}

}  // namespace

std::vector<caas_plan> build_price_sheet(
    const acceleration_map& map,
    const std::vector<cloud::instance_type>& types,
    const caas_config& config) {
  if (map.group_count() == 0) {
    throw std::invalid_argument{"build_price_sheet: empty acceleration map"};
  }
  if (config.margin < 0.0 || config.active_hours_per_month <= 0.0 ||
      config.utilization_target <= 0.0 || config.utilization_target > 1.0) {
    throw std::invalid_argument{"build_price_sheet: bad config"};
  }

  std::vector<caas_plan> plans;
  for (const auto& group : map.groups()) {
    if (group.id == 0 || group.type_names.empty()) continue;  // not sold
    if (group.capacity_users <= 0.0) continue;

    // Cheapest cost per sellable user among the level's backing types.
    caas_plan plan;
    plan.level = group.id;
    plan.solo_response_ms = group.solo_mean_ms;
    double best_cost_per_user_hour = std::numeric_limits<double>::infinity();
    for (const auto& name : group.type_names) {
      const auto& type = find_type(types, name);
      const double sellable = group.capacity_users * config.utilization_target;
      const double cost_per_user_hour = type.cost_per_hour / sellable;
      if (cost_per_user_hour < best_cost_per_user_hour) {
        best_cost_per_user_hour = cost_per_user_hour;
        plan.backing_type = name;
        plan.users_per_instance = sellable;
      }
    }
    plan.cost_per_user_month =
        best_cost_per_user_hour * config.active_hours_per_month;
    plan.price_per_user_month = plan.cost_per_user_month * (1.0 + config.margin);
    plans.push_back(plan);
  }
  return plans;
}

upgrade_comparison caas_vs_device_upgrade(double device_price,
                                          const caas_plan& plan) {
  if (device_price <= 0.0) {
    throw std::invalid_argument{"caas_vs_device_upgrade: device price <= 0"};
  }
  if (plan.price_per_user_month <= 0.0) {
    throw std::invalid_argument{"caas_vs_device_upgrade: plan has no price"};
  }
  upgrade_comparison result;
  result.device_price = device_price;
  result.caas_price_per_month = plan.price_per_user_month;
  result.months_of_service = device_price / plan.price_per_user_month;
  return result;
}

}  // namespace mca::core
