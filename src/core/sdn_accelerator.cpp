#include "core/sdn_accelerator.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <stdexcept>
#include <utility>

namespace mca::core {

sdn_accelerator::sdn_accelerator(sim::simulation& sim,
                                 cloud::backend_pool& backend,
                                 net::rtt_model mobile_link,
                                 trace::log_store* log, sdn_config config,
                                 util::rng rng)
    : sim_{sim},
      backend_{backend},
      mobile_link_{std::move(mobile_link)},
      log_{log},
      config_{config},
      rng_{rng} {
  if (config.routing_overhead_mean_ms < 0.0 || config.backend_one_way_ms < 0.0) {
    throw std::invalid_argument{"sdn_config: negative latency"};
  }
}

double sdn_accelerator::sample_routing_overhead() {
  const double overhead = rng_.normal(config_.routing_overhead_mean_ms,
                                      config_.routing_overhead_sd_ms);
  // Handler work cannot go below a few ms no matter the jitter draw.
  return std::max(overhead, 5.0);
}

double sdn_accelerator::hour_of_day() const noexcept {
  return std::fmod(util::to_hours(sim_.now()), 24.0);
}

void sdn_accelerator::submit(const workload::offload_request& request,
                             group_id group, double battery,
                             response_fn on_response) {
  ++received_;
  // The channel stays open for the whole operation, so both external legs
  // see the same half-RTT (§VI-B.2).
  const double external_one_way =
      mobile_link_.sample(rng_, hour_of_day()) / 2.0;

  // Shared mutable timing filled in along the event chain.
  auto timing = std::make_shared<request_timing>();
  timing->mobile_to_front = external_one_way;
  timing->front_to_mobile = external_one_way;

  auto finish = [this, request, timing,
                 on_response = std::move(on_response)](bool success) {
    timing->success = success;
    sim_.schedule_after(timing->front_to_mobile, [this, request, timing,
                                                  on_response, success] {
      if (success) {
        ++succeeded_;
      } else {
        ++failed_;
      }
      if (on_response) on_response(request, *timing);
    });
  };
  // Wrap on_response so the lambda above stays copyable for std::function.
  auto finish_shared = std::make_shared<decltype(finish)>(std::move(finish));

  sim_.schedule_after(timing->mobile_to_front, [this, request, group, battery,
                                                timing, finish_shared] {
    // Front-end: Request Handler picks a worker thread, Code Offloader
    // resolves the target acceleration group.
    const double overhead = sample_routing_overhead();
    timing->routing = overhead;
    routing_stats_[group].add(overhead);
    if (config_.keep_routing_samples) {
      routing_samples_[group].push_back(overhead);
    }
    sim_.schedule_after(overhead, [this, request, group, battery, timing,
                                   finish_shared] {
      timing->front_to_back = config_.backend_one_way_ms;
      sim_.schedule_after(config_.backend_one_way_ms, [this, request, group,
                                                       battery, timing,
                                                       finish_shared] {
        const util::time_ms dispatched_at = sim_.now();
        const auto status = backend_.route(
            group, request.work.work_units(),
            [this, request, group, battery, timing, finish_shared,
             dispatched_at](util::time_ms service_time) {
              timing->cloud = service_time;
              timing->back_to_front = config_.backend_one_way_ms;
              sim_.schedule_after(config_.backend_one_way_ms,
                                  [this, request, group, battery, timing,
                                   finish_shared, dispatched_at] {
                                    if (log_ != nullptr && config_.log_traces) {
                                      log_->append({request.created_at,
                                                    request.user, group,
                                                    battery, timing->total()});
                                    }
                                    (void)dispatched_at;
                                    (*finish_shared)(true);
                                  });
            });
        if (status != cloud::route_status::ok) {
          // Rejected at the back-end: the failure notice still pays the
          // return hops.
          timing->cloud = 0.0;
          timing->back_to_front = config_.backend_one_way_ms;
          sim_.schedule_after(config_.backend_one_way_ms,
                              [finish_shared] { (*finish_shared)(false); });
        }
      });
    });
  });
}

namespace {
const util::running_stats kEmptyStats{};
const std::vector<double> kEmptySamples{};
}  // namespace

const util::running_stats& sdn_accelerator::routing_stats(
    group_id group) const {
  const auto it = routing_stats_.find(group);
  return it == routing_stats_.end() ? kEmptyStats : it->second;
}

const std::vector<double>& sdn_accelerator::routing_samples(
    group_id group) const {
  const auto it = routing_samples_.find(group);
  return it == routing_samples_.end() ? kEmptySamples : it->second;
}

}  // namespace mca::core
