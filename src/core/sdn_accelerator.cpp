#include "core/sdn_accelerator.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

namespace mca::core {

sdn_accelerator::sdn_accelerator(sim::simulation& sim,
                                 cloud::backend_pool& backend,
                                 net::rtt_model mobile_link,
                                 trace::log_store* log, sdn_config config,
                                 util::rng rng)
    : sim_{sim},
      backend_{backend},
      mobile_link_{std::move(mobile_link)},
      log_{log},
      config_{config},
      rng_{rng} {
  if (config.routing_overhead_mean_ms < 0.0 || config.backend_one_way_ms < 0.0) {
    throw std::invalid_argument{"sdn_config: negative latency"};
  }
  if (config.request_timeout_ms < 0.0 || config.retry_backoff_base_ms < 0.0 ||
      config.retry_backoff_cap_ms < 0.0) {
    throw std::invalid_argument{"sdn_config: negative retry timing"};
  }
  if (config.local_fallback && config.local_exec_wu_per_ms <= 0.0) {
    throw std::invalid_argument{
        "sdn_config: local_fallback needs local_exec_wu_per_ms > 0"};
  }
  // Drawn only when the resilience knobs are live: all-off configs leave
  // the main stream byte-identical to builds that predate retries.
  if (config_.resilience_enabled()) retry_seed_ = rng_();
}

double sdn_accelerator::sample_routing_overhead() {
  const double overhead = rng_.normal(config_.routing_overhead_mean_ms,
                                      config_.routing_overhead_sd_ms);
  // Handler work cannot go below a few ms no matter the jitter draw.
  return std::max(overhead, 5.0);
}

double sdn_accelerator::hour_of_day() const noexcept {
  return std::fmod(util::to_hours(sim_.now()), 24.0);
}

// The per-request pipeline: every stage below runs once per offloaded
// request, so the whole stretch is a lint-enforced hot-path region — the
// static twin of test_hot_path_alloc's counting-allocator gate, covering
// the stages even on inputs the fixed-seed run never reaches.  Slab
// growth (pool_.emplace_back) and the config-gated routing-sample
// retention are member-vector operations, which the region rules
// deliberately permit: they amortize to zero in steady state and the
// runtime gate holds them to that.
// mca:hot-path-begin(sdn-request-pipeline)
std::uint32_t sdn_accelerator::acquire_slot() {
  if (free_head_ != kNoFreeSlot) {
    const std::uint32_t slot = free_head_;
    free_head_ = pool_[slot].next_free;
    return slot;
  }
  const auto slot = static_cast<std::uint32_t>(pool_.size());
  pool_.emplace_back();
  return slot;
}

void sdn_accelerator::release_slot(std::uint32_t slot) noexcept {
  inflight& s = pool_[slot];
  if (s.timeout.valid()) {
    // Defensive: every path that reaches delivery already cancelled its
    // timer; a stale handle here would otherwise fire into a recycled slot.
    sim_.cancel(s.timeout);
    s.timeout = {};
  }
  s.on_response = nullptr;
  s.next_free = free_head_;
  free_head_ = slot;
}

void sdn_accelerator::submit(const workload::offload_request& request,
                             group_id group, double battery,
                             response_fn on_response) {
  start(request, group, battery, std::move(on_response));
}

void sdn_accelerator::submit(const workload::offload_request& request,
                             group_id group, double battery) {
  start(request, group, battery, nullptr);
}

void sdn_accelerator::start(const workload::offload_request& request,
                            group_id group, double battery,
                            response_fn on_response) {
  ++received_;
  if (obs_ != nullptr) obs_->add(obs::counter::sdn_requests);
  // The channel stays open for the whole operation, so both external legs
  // see the same half-RTT (§VI-B.2).
  const double external_one_way =
      mobile_link_.sample(rng_, hour_of_day()) / 2.0;

  const std::uint32_t slot = acquire_slot();
  inflight& s = pool_[slot];
  s.request = request;
  s.group = group;
  s.battery = battery;
  s.timing = {};
  s.timing.mobile_to_front = external_one_way;
  s.timing.front_to_mobile = external_one_way;
  s.on_response = std::move(on_response);
  s.attempt = 0;
  s.seq = received_;
  ++s.epoch;  // orphan any stale backend completion from a prior occupant
  s.timeout = {};
  s.sampled =
      tracer_ != nullptr && (received_ - 1) % trace_sample_every_ == 0;
  if (s.sampled) {
    s.span_wall_us = tracer_->now_us();
    s.span_sim_start = sim_.now();
    if (obs_ != nullptr) obs_->add(obs::counter::sdn_sampled_spans);
  }

  sim_.schedule_after(external_one_way,
                      [this, slot] { stage_routing(slot); });
}

void sdn_accelerator::stage_routing(std::uint32_t slot) {
  // Front-end: Request Handler picks a worker thread, Code Offloader
  // resolves the target acceleration group.
  const double overhead = sample_routing_overhead();
  inflight& s = pool_[slot];
  s.timing.routing = overhead;
  if (s.group >= routing_stats_.size()) routing_stats_.resize(s.group + 1);
  routing_stats_[s.group].add(overhead);
  if (config_.keep_routing_samples) {
    if (s.group >= routing_samples_.size()) {
      routing_samples_.resize(s.group + 1);
    }
    routing_samples_[s.group].push_back(overhead);
  }
  sim_.schedule_after(overhead, [this, slot] { stage_to_backend(slot); });
}

void sdn_accelerator::stage_to_backend(std::uint32_t slot) {
  pool_[slot].timing.front_to_back = config_.backend_one_way_ms;
  sim_.schedule_after(config_.backend_one_way_ms,
                      [this, slot] { stage_dispatch(slot); });
}

void sdn_accelerator::stage_dispatch(std::uint32_t slot) {
  inflight& s = pool_[slot];
  ++s.attempt;
  const std::uint32_t epoch = s.epoch;
  const auto status = backend_.route(
      s.group, s.request.work.work_units(),
      [this, slot, epoch](util::time_ms service_time, bool ok) {
        on_backend_done(slot, epoch, service_time, ok);
      });
  if (status == cloud::route_status::ok) {
    if (config_.request_timeout_ms > 0.0) {
      s.timeout = sim_.schedule_after(config_.request_timeout_ms,
                                      [this, slot] { on_timeout(slot); });
    }
    return;
  }
  // Rejected at the back-end (cap, drain, or outage): retry, fall back,
  // or deliver the failure notice.
  attempt_failed(slot);
}

void sdn_accelerator::stage_return(std::uint32_t slot,
                                   util::time_ms service_time) {
  inflight& s = pool_[slot];
  s.timing.cloud = service_time;
  s.timing.back_to_front = config_.backend_one_way_ms;
  sim_.schedule_after(config_.backend_one_way_ms,
                      [this, slot] { stage_logged(slot); });
}

void sdn_accelerator::stage_logged(std::uint32_t slot) {
  inflight& s = pool_[slot];
  // The trace point: observer and (optionally retained) log record fire in
  // the same event, in the same order the legacy chain appended.
  if (log_ != nullptr && config_.log_traces) {
    if (on_trace_) {
      on_trace_(s.request.created_at, s.request.user, s.group);
    }
    if (config_.retain_trace_records) {
      log_->append({s.request.created_at, s.request.user, s.group, s.battery,
                    s.timing.total()});
    }
  }
  finish(slot, true);
}

void sdn_accelerator::finish(std::uint32_t slot, bool success) {
  pool_[slot].timing.success = success;
  sim_.schedule_after(pool_[slot].timing.front_to_mobile,
                      [this, slot] { deliver(slot); });
}

void sdn_accelerator::deliver(std::uint32_t slot) {
  inflight& s = pool_[slot];
  if (s.timing.success) {
    ++succeeded_;
  } else {
    ++failed_;
  }
  if (obs_ != nullptr) {
    obs_->add(s.timing.success ? obs::counter::sdn_successes
                               : obs::counter::sdn_failures);
  }
  if (exemplars_ != nullptr) {
    // Tail sampling at the sink: offer every response with its final
    // latency; the reservoir keeps the window's top-K over preallocated
    // storage (a compare and at most one O(log K) sift).
    obs::exemplar_record exemplar;
    exemplar.response_ms = s.timing.total();
    exemplar.issued_at_ms = s.request.created_at;
    exemplar.request = s.request.id;
    exemplar.user = s.request.user;
    exemplar.group = s.group;
    exemplar.success = s.timing.success;
    if (exemplars_->observe(exemplar) && obs_ != nullptr) {
      obs_->add(obs::counter::exemplar_admitted);
    }
  }
  if (s.sampled) {
    // Wall extent: host time this shard spent simulating the request's
    // window; sim extent: the response time itself.
    obs::span_record span;
    span.kind = obs::span_kind::request_lifecycle;
    span.wall_start_us = s.span_wall_us;
    span.wall_dur_us = tracer_->now_us() - s.span_wall_us;
    span.sim_start_ms = s.span_sim_start;
    span.sim_dur_ms = sim_.now() - s.span_sim_start;
    span.arg_a = s.request.user;
    span.arg_b = s.timing.success ? 1 : 0;
    tracer_->ring(trace_ring_).push(span);
  }
  if (s.on_response) {
    // Legacy per-request callback: move state out so the callback may
    // reenter submit() (which can recycle or grow the pool).
    response_fn fn = std::move(s.on_response);
    const workload::offload_request request = s.request;
    const request_timing timing = s.timing;
    release_slot(slot);
    fn(request, timing);
    return;
  }
  if (sink_ != nullptr) {
    const workload::offload_request request = s.request;
    const request_timing timing = s.timing;
    const group_id group = s.group;
    release_slot(slot);
    sink_->on_response(request, timing, group);
    return;
  }
  release_slot(slot);
}
// mca:hot-path-end

// The resilience path: backend completions (ok or killed), per-attempt
// timeouts, and the retry/backoff/fallback decision all run per affected
// request at fault-heavy steady state, so they form their own
// lint-enforced hot-path region — the retry bookkeeping may not allocate
// (test_hot_path_alloc re-verifies this at runtime with faults enabled).
// mca:hot-path-begin(sdn-retry-path)
void sdn_accelerator::on_backend_done(std::uint32_t slot, std::uint32_t epoch,
                                      util::time_ms service_time, bool ok) {
  inflight& s = pool_[slot];
  // A completion whose epoch is stale belongs to an attempt this request
  // already timed out of (or to a previous occupant of a recycled slot) —
  // the instance did the work, the client has moved on.
  if (s.epoch != epoch) return;
  if (s.timeout.valid()) {
    sim_.cancel(s.timeout);
    s.timeout = {};
  }
  if (ok) {
    stage_return(slot, service_time);
    return;
  }
  // Killed in flight (spot preemption / forced drain): the partial
  // service time is lost; decide retry vs fallback vs failure.
  attempt_failed(slot);
}

void sdn_accelerator::on_timeout(std::uint32_t slot) {
  inflight& s = pool_[slot];
  s.timeout = {};
  // Orphan the outstanding backend completion: when (if) it lands, its
  // captured epoch no longer matches.
  ++s.epoch;
  if (obs_ != nullptr) obs_->add(obs::counter::sdn_timeouts);
  // The front-end held the request for the full timeout window.
  s.timing.routing += config_.request_timeout_ms;
  attempt_failed(slot);
}

void sdn_accelerator::attempt_failed(std::uint32_t slot) {
  inflight& s = pool_[slot];
  if (static_cast<std::size_t>(s.attempt) <= config_.max_retries) {
    if (obs_ != nullptr) obs_->add(obs::counter::sdn_retries);
    // Capped exponential backoff with jitter from the request's own
    // counter-split stream, keyed on the deterministic arrival sequence
    // (never request.id, a process-global atomic): deterministic per
    // (seed, arrival, attempt), independent of thread or shard layout.
    const std::uint32_t shift = s.attempt > 16 ? 16u : s.attempt - 1;
    double wait = config_.retry_backoff_base_ms *
                  static_cast<double>(std::uint64_t{1} << shift);
    if (wait > config_.retry_backoff_cap_ms) {
      wait = config_.retry_backoff_cap_ms;
    }
    util::rng jitter =
        util::rng::split(retry_seed_, (s.seq << 8) | s.attempt);
    wait *= 0.5 + jitter.uniform();
    s.timing.routing += wait;
    sim_.schedule_after(wait, [this, slot] { stage_dispatch(slot); });
    return;
  }
  if (config_.local_fallback) {
    if (obs_ != nullptr) obs_->add(obs::counter::sdn_local_fallbacks);
    // Graceful degradation: the device runs the task itself.  The result
    // needs no network legs beyond those already paid; the "cloud" time
    // becomes the (much slower) local execution.
    const double local_ms =
        s.request.work.work_units() / config_.local_exec_wu_per_ms;
    s.timing.cloud = local_ms;
    s.timing.local = true;
    sim_.schedule_after(local_ms, [this, slot] { finish(slot, true); });
    return;
  }
  // Retry budget exhausted, no fallback: the failure notice still pays
  // the return hops (identical to the pre-retry rejection path).
  s.timing.cloud = 0.0;
  s.timing.back_to_front = config_.backend_one_way_ms;
  sim_.schedule_after(config_.backend_one_way_ms,
                      [this, slot] { finish(slot, false); });
}
// mca:hot-path-end

namespace {
const util::running_stats kEmptyStats{};
const std::vector<double> kEmptySamples{};
}  // namespace

const util::running_stats& sdn_accelerator::routing_stats(
    group_id group) const {
  return group < routing_stats_.size() ? routing_stats_[group] : kEmptyStats;
}

const std::vector<double>& sdn_accelerator::routing_samples(
    group_id group) const {
  return group < routing_samples_.size() ? routing_samples_[group]
                                         : kEmptySamples;
}

}  // namespace mca::core
