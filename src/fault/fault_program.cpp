#include "fault/fault_program.h"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "util/rng.h"

namespace mca::fault {

std::vector<preemption_event> make_preemption_schedule(
    const fault_program& program, util::time_ms horizon, std::uint64_t seed) {
  std::vector<preemption_event> schedule;
  if (!program.active() || horizon <= 0.0) return schedule;
  for (group_id g = 0; g < program.preempt_hazard_per_hour.size(); ++g) {
    const double hazard = program.preempt_hazard_per_hour[g];
    if (hazard <= 0.0) continue;
    // One independent counter-split stream per group: the schedule never
    // depends on which other groups carry hazards or on draw order.
    util::rng stream = util::rng::split(seed ^ kFaultStreamTag, g);
    const double rate_per_ms = hazard / util::hours(1.0);
    util::time_ms at = 0.0;
    for (;;) {
      at += stream.exponential(rate_per_ms);
      if (at >= horizon) break;
      preemption_event event;
      event.at = at;
      event.group = g;
      event.ordinal = stream();
      schedule.push_back(event);
    }
  }
  // Time-sorted with (group) tiebreak, then globally sequenced: `seq` is
  // what shards slice on, so the global fault set is invariant under any
  // sharding of the same spec.
  std::sort(schedule.begin(), schedule.end(),
            [](const preemption_event& a, const preemption_event& b) {
              if (a.at != b.at) return a.at < b.at;
              return a.group < b.group;
            });
  for (std::size_t i = 0; i < schedule.size(); ++i) {
    schedule[i].seq = i;
  }
  return schedule;
}

void validate(const fault_program& program, util::time_ms horizon,
              const char* context) {
  if (!program.active()) return;
  const std::string prefix = std::string{context} + ": fault program ";
  auto reject = [&](const std::string& what) {
    throw std::invalid_argument{prefix + what};
  };
  for (std::size_t g = 0; g < program.preempt_hazard_per_hour.size(); ++g) {
    if (program.preempt_hazard_per_hour[g] < 0.0) {
      reject("preempt_hazard_per_hour[" + std::to_string(g) +
             "] is negative (" +
             std::to_string(program.preempt_hazard_per_hour[g]) +
             "); hazards are expected preemptions per hour, >= 0");
    }
  }
  for (std::size_t i = 0; i < program.outages.size(); ++i) {
    const outage_window& w = program.outages[i];
    if (w.end_ms <= w.start_ms) {
      reject("outages[" + std::to_string(i) + "] is empty or inverted (" +
             std::to_string(w.start_ms) + " ms .. " +
             std::to_string(w.end_ms) + " ms)");
    }
    if (w.start_ms < 0.0 || w.end_ms > horizon) {
      reject("outages[" + std::to_string(i) +
             "] lies outside the scenario duration (" +
             std::to_string(w.start_ms) + " ms .. " +
             std::to_string(w.end_ms) + " ms vs horizon " +
             std::to_string(horizon) + " ms)");
    }
  }
  if (program.cold_start_mean_ms < 0.0) {
    reject("cold_start_mean_ms is negative");
  }
  if (program.cold_start_sigma < 0.0) {
    reject("cold_start_sigma is negative");
  }
  if (program.request_timeout_ms < 0.0) {
    reject("request_timeout_ms is negative (use 0 to disable the timer)");
  }
  if (program.retry_backoff_base_ms < 0.0 ||
      program.retry_backoff_cap_ms < 0.0) {
    reject("retry backoff base/cap must be >= 0");
  }
  if (program.retry_backoff_cap_ms < program.retry_backoff_base_ms) {
    reject("retry_backoff_cap_ms (" +
           std::to_string(program.retry_backoff_cap_ms) +
           ") is below retry_backoff_base_ms (" +
           std::to_string(program.retry_backoff_base_ms) + ")");
  }
  if (program.max_retries == 0 && !program.local_fallback) {
    reject(
        "max_retries is 0 with local_fallback disabled: a single timeout "
        "or preemption would hard-fail the request; allow at least one "
        "retry or enable the fallback");
  }
  if (program.local_fallback && program.local_exec_wu_per_ms <= 0.0) {
    reject("local_exec_wu_per_ms must be > 0 when local_fallback is on");
  }
}

const char* fault_kind_name(fault_kind kind) noexcept {
  switch (kind) {
    case fault_kind::preemption: return "preemption";
    case fault_kind::outage_begin: return "outage_begin";
    case fault_kind::outage_end: return "outage_end";
    case fault_kind::count: break;
  }
  return "unknown";
}

std::vector<obs::span_record> fault_spans(
    const fault_program& program, std::span<const preemption_event> schedule) {
  std::vector<obs::span_record> spans;
  spans.reserve(program.outages.size() + schedule.size());
  for (const outage_window& w : program.outages) {
    obs::span_record span;
    span.sim_start_ms = w.start_ms;
    span.sim_dur_ms = w.end_ms - w.start_ms;
    span.arg_a = w.group;
    span.arg_b = static_cast<std::uint64_t>(fault_kind::outage_begin);
    span.kind = obs::span_kind::fault_window;
    spans.push_back(span);
  }
  for (const preemption_event& ev : schedule) {
    obs::span_record span;
    span.sim_start_ms = ev.at;
    span.sim_dur_ms = 0.0;
    span.arg_a = ev.group;
    span.arg_b = static_cast<std::uint64_t>(fault_kind::preemption);
    span.kind = obs::span_kind::fault_window;
    spans.push_back(span);
  }
  return spans;
}

}  // namespace mca::fault
