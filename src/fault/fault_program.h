// fault — deterministic fault-injection programs for the backend fleet.
//
// A `fault_program` rides on `exp::scenario_spec` and describes, as pure
// data, the availability hazards a run injects: spot-style instance
// preemption (per-group hazard rates), scheduled zone/region outage
// windows that drain a whole acceleration group at once, and cold-start
// delays paid between `backend_pool::launch` and first-accept.  It also
// carries the resilience knobs the offload path uses to survive those
// hazards: per-request timeout, capped exponential backoff retry budget,
// and the local-execution fallback used after retry exhaustion.
//
// Everything here is deterministic by construction.  The preemption
// schedule is expanded ahead of time by `make_preemption_schedule` — a
// pure function of (program, horizon, seed) that draws each group's
// hazard process from its own counter-split rng stream — so the same
// spec yields the same fault trace regardless of thread count, shard
// count, or event interleaving.  Shards slice the shared schedule by
// `seq % shard_count`, which keeps the monolith and any sharding of the
// same spec injecting the same global fault set.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "obs/tracer.h"
#include "util/ids.h"
#include "util/sim_time.h"

namespace mca::fault {

/// Stream tag xor-ed into the scenario seed before counter-splitting per
/// group, so fault draws never alias workload or study streams.
inline constexpr std::uint64_t kFaultStreamTag = 0xfa017'de7ec7ULL;

/// One scheduled availability gap: the group's backends drain at
/// `start_ms` and the group accepts no new launches until `end_ms`.
struct outage_window {
  group_id group = 0;          ///< dense group index (0-based)
  util::time_ms start_ms = 0;  ///< outage begin (sim time)
  util::time_ms end_ms = 0;    ///< outage end; must be > start_ms
};

/// The full fault/resilience description carried by a scenario.
///
/// `enabled == false` (the default) must be byte-for-byte inert: no rng
/// stream is consumed, no event is scheduled, and every golden
/// fingerprint recorded before this subsystem existed is reproduced
/// exactly.
struct fault_program {
  bool enabled = false;

  // ---- hazards -----------------------------------------------------------
  /// Per-group spot preemption hazard (expected preemptions per hour of
  /// sim time, per group).  Groups beyond the vector's size get 0.
  std::vector<double> preempt_hazard_per_hour;
  /// Scheduled whole-group outages.
  std::vector<outage_window> outages;
  /// Cold-start delay between launch and first-accept, lognormal with
  /// median `cold_start_mean_ms` and shape `cold_start_sigma`; 0 mean
  /// disables (and draws nothing from the instance stream).
  double cold_start_mean_ms = 0.0;
  double cold_start_sigma = 0.4;

  // ---- resilience --------------------------------------------------------
  /// Retry attempts after the first try fails or times out.
  std::size_t max_retries = 2;
  /// Per-attempt timeout; <= 0 disables the timeout timer.
  double request_timeout_ms = 10'000.0;
  /// Capped exponential backoff: attempt k waits
  /// min(cap, base * 2^(k-1)) * (0.5 + u), u ~ U[0,1).
  double retry_backoff_base_ms = 200.0;
  double retry_backoff_cap_ms = 2'000.0;
  /// After retry exhaustion, execute on the local device instead of
  /// failing outright (acceptance degrades instead of cliffing).
  bool local_fallback = true;
  /// Local device throughput used for the fallback execution time:
  /// work_units / local_exec_wu_per_ms milliseconds per request.
  double local_exec_wu_per_ms = 0.005;

  bool active() const noexcept { return enabled; }
};

/// One expanded preemption: at time `at`, kill accepting instance
/// `ordinal % live` of group `group`.  `seq` is the global order index
/// used to slice the schedule across shards deterministically.
struct preemption_event {
  util::time_ms at = 0;
  group_id group = 0;
  std::uint64_t ordinal = 0;  ///< victim selector within the group
  std::uint64_t seq = 0;      ///< global order index (assigned sorted)
};

/// Expands the per-group hazard processes into a single time-sorted
/// schedule over [0, horizon).  Pure function of its arguments: the same
/// (program, horizon, seed) triple yields the same schedule on any
/// thread or shard layout.  Returns empty when the program is disabled.
std::vector<preemption_event> make_preemption_schedule(
    const fault_program& program, util::time_ms horizon, std::uint64_t seed);

/// Validates a fault program against the scenario horizon; throws
/// std::invalid_argument with an actionable message on nonsense
/// (negative hazard rates, outage windows outside [0, horizon] or
/// inverted, zero retry budget with fallback disabled, non-positive
/// fallback throughput).  `context` prefixes messages, e.g. the
/// scenario name.  No-op when the program is disabled.
void validate(const fault_program& program, util::time_ms horizon,
              const char* context);

/// Fault event taxonomy for reports and trace lanes.
enum class fault_kind : std::uint8_t {
  preemption,    ///< spot instance killed mid-flight
  outage_begin,  ///< group drained, launches refused
  outage_end,    ///< group accepting again, capacity re-aimed
  count
};

/// Stable display name (table in fault_program.cpp).
const char* fault_kind_name(fault_kind kind) noexcept;

/// Builds the "fault windows" trace-lane spans from a program and its
/// expanded schedule: one sim-time span per outage window and one
/// zero-length marker per preemption strike (arg_a = group, arg_b = the
/// fault_kind).  Post-run, pure — pairs with obs::trace_lane for export
/// next to the alert and exemplar lanes.
std::vector<obs::span_record> fault_spans(
    const fault_program& program, std::span<const preemption_event> schedule);

}  // namespace mca::fault
