// Minimal CSV emission for bench output.
//
// Every bench binary prints figure series as CSV to stdout so the paper's
// plots can be regenerated with gnuplot exactly as the authors did.
#pragma once

#include <initializer_list>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace mca::util {

/// Streams rows as RFC-4180-ish CSV (quotes fields containing , " or \n).
class csv_writer {
 public:
  /// Writes the header row immediately.
  csv_writer(std::ostream& out, std::vector<std::string> columns);

  /// Writes one row; throws std::invalid_argument if the field count does
  /// not match the header.
  void row(std::initializer_list<std::string> fields);
  void row(const std::vector<std::string>& fields);

  /// Convenience: formats arithmetic values with %.6g semantics.
  template <typename... Ts>
  void row_values(const Ts&... values) {
    std::vector<std::string> fields;
    fields.reserve(sizeof...(values));
    (fields.push_back(format_field(values)), ...);
    row(fields);
  }

  std::size_t rows_written() const noexcept { return rows_; }

  static std::string format_field(double v);
  static std::string format_field(int v) { return std::to_string(v); }
  static std::string format_field(long v) { return std::to_string(v); }
  static std::string format_field(unsigned v) { return std::to_string(v); }
  static std::string format_field(unsigned long v) { return std::to_string(v); }
  static std::string format_field(std::string_view v) { return std::string{v}; }
  static std::string format_field(const char* v) { return std::string{v}; }

 private:
  void write_row(const std::vector<std::string>& fields);

  std::ostream& out_;
  std::size_t columns_;
  std::size_t rows_ = 0;
};

/// Quotes a single CSV field if needed.
std::string csv_escape(std::string_view field);

}  // namespace mca::util
