// Empirical distribution with inverse-CDF sampling, and the alias-method
// sampler for weighted discrete draws.
//
// `empirical_distribution` replays measured sample sets (e.g. the
// smartphone-study inter-arrival times) as a generative distribution:
// draws interpolate linearly between order statistics.  `alias_sampler`
// turns an arbitrary weight vector into O(1) draws (Walker/Vose alias
// tables) — the workload generators use it for weighted task mixes and
// any gap-model mixture, where a CDF walk would cost O(log n) per
// request.
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <vector>

#include "util/rng.h"
#include "util/stats.h"

namespace mca::util {

/// Walker's alias method: samples index i with probability
/// weight[i] / sum(weight) using exactly one uniform draw per sample.
///
/// Construction is O(n) (Vose's stable two-stack variant); sampling is one
/// table lookup plus one comparison — no binary search, no allocation.
class alias_sampler {
 public:
  /// Throws std::invalid_argument on an empty weight set, a negative
  /// weight, or an all-zero weight sum.
  explicit alias_sampler(std::span<const double> weights) {
    const std::size_t n = weights.size();
    if (n == 0) throw std::invalid_argument{"alias_sampler: no weights"};
    double total = 0.0;
    for (const double w : weights) {
      if (w < 0.0) {
        throw std::invalid_argument{"alias_sampler: negative weight"};
      }
      total += w;
    }
    if (total <= 0.0) {
      throw std::invalid_argument{"alias_sampler: zero weight sum"};
    }

    prob_.resize(n);
    alias_.resize(n);
    // Scaled weights: mean 1.  Partition into under-/over-full columns and
    // pair each under-full column with an over-full donor.
    std::vector<double> scaled(n);
    for (std::size_t i = 0; i < n; ++i) {
      scaled[i] = weights[i] * static_cast<double>(n) / total;
    }
    std::vector<std::uint32_t> small;
    std::vector<std::uint32_t> large;
    small.reserve(n);
    large.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      (scaled[i] < 1.0 ? small : large).push_back(
          static_cast<std::uint32_t>(i));
    }
    while (!small.empty() && !large.empty()) {
      const std::uint32_t s = small.back();
      const std::uint32_t l = large.back();
      small.pop_back();
      prob_[s] = scaled[s];
      alias_[s] = l;
      scaled[l] = (scaled[l] + scaled[s]) - 1.0;
      if (scaled[l] < 1.0) {
        large.pop_back();
        small.push_back(l);
      }
    }
    // Numerical leftovers are full columns.
    for (const std::uint32_t i : small) {
      prob_[i] = 1.0;
      alias_[i] = i;
    }
    for (const std::uint32_t i : large) {
      prob_[i] = 1.0;
      alias_[i] = i;
    }
  }

  std::size_t size() const noexcept { return prob_.size(); }

  /// Draws one index; exactly one rng draw.
  std::size_t sample(rng& r) const noexcept {
    const double u = r.uniform() * static_cast<double>(prob_.size());
    const auto column = static_cast<std::size_t>(u);
    const std::size_t i = column < prob_.size() ? column : prob_.size() - 1;
    const double coin = u - static_cast<double>(i);
    return coin < prob_[i] ? i : alias_[i];
  }

  /// Probability mass the table assigns to index i (for tests).
  double probability_of(std::size_t i) const {
    double p = prob_.at(i) / static_cast<double>(prob_.size());
    for (std::size_t j = 0; j < prob_.size(); ++j) {
      if (j != i && alias_[j] == i) {
        p += (1.0 - prob_[j]) / static_cast<double>(prob_.size());
      }
    }
    return p;
  }

 private:
  std::vector<double> prob_;
  std::vector<std::uint32_t> alias_;
};

/// Samplable wrapper around a set of observed values.
class empirical_distribution {
 public:
  /// Throws std::invalid_argument on an empty sample set.
  explicit empirical_distribution(std::span<const double> samples)
      : sorted_{samples.begin(), samples.end()} {
    if (sorted_.empty()) {
      throw std::invalid_argument{"empirical_distribution: no samples"};
    }
    std::sort(sorted_.begin(), sorted_.end());
  }

  /// Draws by inverse transform with linear interpolation.
  double sample(rng& r) const {
    return percentile_sorted(sorted_, r.uniform());
  }

  double min() const noexcept { return sorted_.front(); }
  double max() const noexcept { return sorted_.back(); }
  std::size_t size() const noexcept { return sorted_.size(); }
  summary stats() const { return summary_of(sorted_); }

 private:
  std::vector<double> sorted_;
};

}  // namespace mca::util
