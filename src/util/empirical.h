// Empirical distribution with inverse-CDF sampling.
//
// Used to replay measured sample sets (e.g. the smartphone-study
// inter-arrival times) as a generative distribution: draws interpolate
// linearly between order statistics.
#pragma once

#include <algorithm>
#include <span>
#include <stdexcept>
#include <vector>

#include "util/rng.h"
#include "util/stats.h"

namespace mca::util {

/// Samplable wrapper around a set of observed values.
class empirical_distribution {
 public:
  /// Throws std::invalid_argument on an empty sample set.
  explicit empirical_distribution(std::span<const double> samples)
      : sorted_{samples.begin(), samples.end()} {
    if (sorted_.empty()) {
      throw std::invalid_argument{"empirical_distribution: no samples"};
    }
    std::sort(sorted_.begin(), sorted_.end());
  }

  /// Draws by inverse transform with linear interpolation.
  double sample(rng& r) const {
    return percentile_sorted(sorted_, r.uniform());
  }

  double min() const noexcept { return sorted_.front(); }
  double max() const noexcept { return sorted_.back(); }
  std::size_t size() const noexcept { return sorted_.size(); }
  summary stats() const { return summary_of(sorted_); }

 private:
  std::vector<double> sorted_;
};

}  // namespace mca::util
