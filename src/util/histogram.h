// Fixed-width and logarithmic histograms for latency distributions.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace mca::util {

/// Fixed-width histogram over [lo, hi); out-of-range samples land in
/// saturating edge bins so no observation is silently dropped.
class histogram {
 public:
  /// Throws std::invalid_argument if bins == 0 or hi <= lo.
  histogram(double lo, double hi, std::size_t bins);

  void add(double x) noexcept;
  /// Combines counts as if all of `other`'s samples were added here.
  /// Throws std::invalid_argument unless both histograms share the same
  /// range and bin count.
  void merge(const histogram& other);
  /// Replaces this histogram's counts with the bin-wise difference
  /// `cur - prev` — the samples added to `cur` since it looked like
  /// `prev`.  All three histograms must share the same layout and `prev`
  /// must be an earlier snapshot of `cur` (total <= cur's); throws
  /// std::invalid_argument otherwise.  Allocation-free, so per-window
  /// telemetry deltas (obs::timeline) can use it at slot rate.
  void assign_difference(const histogram& cur, const histogram& prev);
  std::size_t total() const noexcept { return total_; }
  std::size_t bin_count() const noexcept { return counts_.size(); }
  std::size_t count_in_bin(std::size_t bin) const { return counts_.at(bin); }
  /// Inclusive lower edge of a bin.
  double bin_lower(std::size_t bin) const;
  double bin_width() const noexcept { return width_; }
  /// Approximate quantile from bin midpoints; q in [0,1].
  double quantile(double q) const;
  /// Quantile with within-bin linear interpolation (numpy's "linear"
  /// method applied to the binned samples): the c samples of a bin are
  /// placed at evenly spaced positions inside it, and the fractional rank
  /// q*(total-1) interpolates between adjacent sample values — exact on
  /// distributions with one sample per bin, and strictly finer than the
  /// midpoint quantile() everywhere else.  The SLO percentile extraction
  /// (p50/p95/p99/p99.9) builds on this.  Throws like quantile().
  double quantile_interpolated(double q) const;

 private:
  double lo_;
  double width_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

/// Power-of-two bucketed histogram (HdrHistogram-lite) for long-tailed
/// latency data; bucket i covers [2^i, 2^{i+1}) with a shared [0,1) bucket.
class log_histogram {
 public:
  explicit log_histogram(std::size_t max_buckets = 32);

  void add(double x) noexcept;
  /// Combines bucket counts; throws std::invalid_argument on a bucket
  /// count mismatch.
  void merge(const log_histogram& other);
  std::size_t total() const noexcept { return total_; }
  std::size_t bucket_count() const noexcept { return counts_.size(); }
  std::size_t count_in_bucket(std::size_t b) const { return counts_.at(b); }
  double bucket_lower(std::size_t b) const noexcept;
  /// One-line textual rendering ("[lo,hi): n ..."), for debug output.
  std::string to_string() const;

 private:
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace mca::util
