// Minimal over-aligned allocator for cache-line-conscious containers.
//
// std::allocator only guarantees alignof(T); hot flat structures (the
// event heap's 4-entry child groups, the simplex tableau rows) want their
// groups to start on cache-line boundaries so one group costs one line.
#pragma once

#include <cstddef>
#include <new>

namespace mca::util {

inline constexpr std::size_t kCacheLine = 64;

template <typename T, std::size_t Alignment = kCacheLine>
struct aligned_allocator {
  using value_type = T;
  // Explicit rebind: the non-type Alignment parameter defeats the
  // allocator_traits auto-rebind.
  template <typename U>
  struct rebind {
    using other = aligned_allocator<U, Alignment>;
  };

  aligned_allocator() noexcept = default;
  template <typename U>
  aligned_allocator(const aligned_allocator<U, Alignment>&) noexcept {}

  T* allocate(std::size_t n) {
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t{Alignment}));
  }
  void deallocate(T* p, std::size_t) noexcept {
    ::operator delete(p, std::align_val_t{Alignment});
  }

  template <typename U>
  bool operator==(const aligned_allocator<U, Alignment>&) const noexcept {
    return true;
  }
};

}  // namespace mca::util
