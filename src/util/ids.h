// Shared identifier vocabulary.
//
// Plain integer aliases (not strong types): ids cross module boundaries
// constantly and are never mixed arithmetically, so the alias keeps call
// sites readable without wrapper friction.
#pragma once

#include <cstdint>

namespace mca {

/// A mobile user/device in the workload.
using user_id = std::uint32_t;

/// One offloading request.
using request_id = std::uint64_t;

/// A provisioned cloud instance.
using instance_id = std::uint32_t;

/// Acceleration group index (0 = demoted anomaly group, 1 = slowest
/// regular level; matches the paper's numbering).
using group_id = std::uint32_t;

}  // namespace mca
