// Deterministic, seedable pseudo-random number generation for simulations.
//
// Every stochastic component of the library takes an explicit `rng&` (or a
// seed) so experiments are reproducible bit-for-bit across runs.  The
// generator is xoshiro256** seeded through splitmix64, which is fast,
// well-distributed, and lets us cheaply derive independent child streams.
#pragma once

#include <array>
#include <cmath>
#include <cstdint>
#include <limits>
#include <numbers>
#include <span>
#include <stdexcept>

namespace mca::util {

/// splitmix64 step; used for seeding and for deriving child streams.
constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** pseudo-random generator with distribution helpers.
///
/// Not thread-safe by design: give each simulated actor its own stream via
/// `fork()` instead of sharing one generator behind a lock.
class rng {
 public:
  using result_type = std::uint64_t;

  explicit rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Derives an independent child stream; deterministic given the parent
  /// state.  Advances the parent by one draw.
  rng fork() noexcept { return rng{(*this)()}; }

  /// Counter-based stream splitting: the generator for replication
  /// `stream` of an experiment seeded with `seed`.  Unlike seeding with
  /// `seed + stream` — whose splitmix chains are the *same* sequence
  /// entered at adjacent offsets, so neighboring replications share most
  /// of their state words — each (seed, stream) pair here selects a state
  /// by xor-combining two independent splitmix64 lanes, one keyed by the
  /// seed and one by the stream counter.  Adjacent stream ids (and
  /// adjacent seeds) therefore differ pseudorandomly in every state bit.
  /// Pure function of its arguments: any replication can be reproduced in
  /// isolation, in any order, on any thread.
  static rng split(std::uint64_t seed, std::uint64_t stream) noexcept {
    std::uint64_t seed_lane = seed;
    std::uint64_t stream_lane = stream ^ 0x6a09e667f3bcc909ULL;
    rng r;
    for (auto& word : r.state_) {
      word = splitmix64(seed_lane) ^ splitmix64(stream_lane);
    }
    // xoshiro must not start from the all-zero state; vanishingly rare,
    // but cheap to rule out entirely.
    if ((r.state_[0] | r.state_[1] | r.state_[2] | r.state_[3]) == 0) {
      r.state_[0] = 0x9e3779b97f4a7c15ULL;
    }
    return r;
  }

  /// Uniform double in [0, 1).
  double uniform() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [lo, hi] (inclusive).
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    if (lo > hi) throw std::invalid_argument{"uniform_int: lo > hi"};
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    // Rejection sampling for exact uniformity (span==0 means full range).
    if (span == 0) return static_cast<std::int64_t>((*this)());
    const std::uint64_t limit = max() - max() % span;
    std::uint64_t draw = (*this)();
    while (draw >= limit) draw = (*this)();
    return lo + static_cast<std::int64_t>(draw % span);
  }

  bool bernoulli(double p) noexcept { return uniform() < p; }

  /// Exponential with the given rate (events per unit time).
  double exponential(double rate) {
    if (rate <= 0) throw std::invalid_argument{"exponential: rate <= 0"};
    return -std::log1p(-uniform()) / rate;
  }

  /// Standard normal via Box–Muller (single value; simple and adequate here).
  double normal() noexcept {
    const double u1 = 1.0 - uniform();  // avoid log(0)
    const double u2 = uniform();
    return std::sqrt(-2.0 * std::log(u1)) *
           std::cos(2.0 * std::numbers::pi * u2);
  }

  double normal(double mean, double sd) noexcept { return mean + sd * normal(); }

  /// Lognormal parameterized by the underlying normal's mu/sigma.
  double lognormal(double mu, double sigma) noexcept {
    return std::exp(normal(mu, sigma));
  }

  /// Picks a uniformly random element of a non-empty span.
  template <typename T>
  const T& pick(std::span<const T> items) {
    if (items.empty()) throw std::invalid_argument{"pick: empty span"};
    return items[static_cast<std::size_t>(
        uniform_int(0, static_cast<std::int64_t>(items.size()) - 1))];
  }

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::span<T> items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      const auto j = static_cast<std::size_t>(
          uniform_int(0, static_cast<std::int64_t>(i) - 1));
      std::swap(items[i - 1], items[j]);
    }
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace mca::util
