#include "util/csv.h"

#include <cstdio>
#include <stdexcept>

namespace mca::util {

std::string csv_escape(std::string_view field) {
  const bool needs_quotes =
      field.find_first_of(",\"\n") != std::string_view::npos;
  if (!needs_quotes) return std::string{field};
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

csv_writer::csv_writer(std::ostream& out, std::vector<std::string> columns)
    : out_{out}, columns_{columns.size()} {
  if (columns.empty()) throw std::invalid_argument{"csv_writer: no columns"};
  write_row(columns);
  rows_ = 0;  // header does not count as a data row
}

void csv_writer::row(std::initializer_list<std::string> fields) {
  row(std::vector<std::string>{fields});
}

void csv_writer::row(const std::vector<std::string>& fields) {
  if (fields.size() != columns_) {
    throw std::invalid_argument{"csv_writer: field count mismatch"};
  }
  write_row(fields);
  ++rows_;
}

void csv_writer::write_row(const std::vector<std::string>& fields) {
  bool first = true;
  for (const auto& field : fields) {
    if (!first) out_ << ',';
    out_ << csv_escape(field);
    first = false;
  }
  out_ << '\n';
}

std::string csv_writer::format_field(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

}  // namespace mca::util
