#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace mca::util {

// One Welford update per successful response (digest mean/variance), one
// merge per group per shard fold — both pure register arithmetic.
// mca:hot-path-begin(welford-accumulate)
void running_stats::add(double x) noexcept {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void running_stats::merge(const running_stats& other) noexcept {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const auto n1 = static_cast<double>(count_);
  const auto n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double total = n1 + n2;
  mean_ += delta * n2 / total;
  m2_ += other.m2_ + delta * delta * n1 * n2 / total;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}
// mca:hot-path-end

void merge_each(std::span<running_stats> dst,
                std::span<const running_stats> src) {
  if (dst.size() != src.size()) {
    throw std::invalid_argument{"merge_each: mismatched lengths"};
  }
  running_stats* __restrict__ d = dst.data();
  const running_stats* __restrict__ s = src.data();
  for (std::size_t i = 0; i < dst.size(); ++i) d[i].merge(s[i]);
}

double running_stats::variance() const noexcept {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double running_stats::stddev() const noexcept { return std::sqrt(variance()); }

double percentile_sorted(std::span<const double> sorted, double q) {
  if (sorted.empty()) throw std::invalid_argument{"percentile: empty sample set"};
  if (q < 0.0 || q > 1.0) throw std::invalid_argument{"percentile: q outside [0,1]"};
  if (sorted.size() == 1) return sorted.front();
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const auto hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

double percentile(std::span<const double> samples, double q) {
  std::vector<double> sorted{samples.begin(), samples.end()};
  std::sort(sorted.begin(), sorted.end());
  return percentile_sorted(sorted, q);
}

summary summary_of(std::span<const double> samples) {
  if (samples.empty()) throw std::invalid_argument{"summary_of: empty sample set"};
  std::vector<double> sorted{samples.begin(), samples.end()};
  std::sort(sorted.begin(), sorted.end());
  running_stats acc;
  for (double x : sorted) acc.add(x);
  summary s;
  s.count = acc.count();
  s.mean = acc.mean();
  s.stddev = acc.stddev();
  s.min = acc.min();
  s.max = acc.max();
  s.median = percentile_sorted(sorted, 0.5);
  s.p5 = percentile_sorted(sorted, 0.05);
  s.p25 = percentile_sorted(sorted, 0.25);
  s.p75 = percentile_sorted(sorted, 0.75);
  s.p95 = percentile_sorted(sorted, 0.95);
  return s;
}

double mean_of(std::span<const double> samples) noexcept {
  running_stats acc;
  for (double x : samples) acc.add(x);
  return acc.mean();
}

double stddev_of(std::span<const double> samples) noexcept {
  running_stats acc;
  for (double x : samples) acc.add(x);
  return acc.stddev();
}

}  // namespace mca::util
