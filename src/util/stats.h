// Streaming and batch descriptive statistics.
//
// `running_stats` uses Welford's algorithm so simulated servers can track
// response-time moments over millions of requests without storing samples.
// `summary_of` computes the batch view (percentiles included) used when a
// bench needs the interpercentile bands the paper plots.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace mca::util {

/// Online mean/variance/min/max accumulator (Welford); mergeable.
class running_stats {
 public:
  void add(double x) noexcept;
  /// Combines two accumulators as if all samples were seen by one.
  void merge(const running_stats& other) noexcept;

  std::size_t count() const noexcept { return count_; }
  bool empty() const noexcept { return count_ == 0; }
  /// Mean of the samples; 0 when empty.
  double mean() const noexcept { return mean_; }
  /// Unbiased sample variance; 0 with fewer than two samples.
  double variance() const noexcept;
  double stddev() const noexcept;
  double min() const noexcept { return min_; }
  double max() const noexcept { return max_; }
  double sum() const noexcept { return mean_ * static_cast<double>(count_); }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Element-wise merge of two equal-length accumulator arrays:
/// dst[i].merge(src[i]) for every i, with per-pair math identical to the
/// scalar merge (digest fingerprints are unaffected).  The pairs are
/// independent, so the single batched loop lets the compiler overlap the
/// divides/FMAs across groups instead of serializing one call per group —
/// the per-shard digest-merge path passes whole group arrays here.
/// Throws std::invalid_argument on mismatched lengths.
void merge_each(std::span<running_stats> dst, std::span<const running_stats> src);

/// Batch summary of a sample set.
struct summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
  double median = 0.0;
  double p5 = 0.0;
  double p25 = 0.0;
  double p75 = 0.0;
  double p95 = 0.0;
};

/// Linear-interpolation percentile of an *unsorted* sample set, q in [0,1].
/// Throws std::invalid_argument on an empty set or q outside [0,1].
double percentile(std::span<const double> samples, double q);

/// Percentile over samples already sorted ascending (no copy).
double percentile_sorted(std::span<const double> sorted, double q);

/// Full batch summary; throws std::invalid_argument on an empty set.
summary summary_of(std::span<const double> samples);

/// Mean of a sample set; 0 when empty.
double mean_of(std::span<const double> samples) noexcept;

/// Sample standard deviation; 0 with fewer than two samples.
double stddev_of(std::span<const double> samples) noexcept;

}  // namespace mca::util
