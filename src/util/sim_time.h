// Simulated-time vocabulary.
//
// The whole library measures simulated time in milliseconds held in a
// double (the paper reports every quantity in milliseconds; sub-millisecond
// resolution matters only for queueing order, which doubles handle fine over
// the day-scale horizons simulated here).
#pragma once

namespace mca::util {

/// Milliseconds of simulated time (point or duration by context).
using time_ms = double;

constexpr time_ms milliseconds(double n) noexcept { return n; }
constexpr time_ms seconds(double n) noexcept { return n * 1000.0; }
constexpr time_ms minutes(double n) noexcept { return n * 60'000.0; }
constexpr time_ms hours(double n) noexcept { return n * 3'600'000.0; }

constexpr double to_seconds(time_ms t) noexcept { return t / 1000.0; }
constexpr double to_minutes(time_ms t) noexcept { return t / 60'000.0; }
constexpr double to_hours(time_ms t) noexcept { return t / 3'600'000.0; }

}  // namespace mca::util
