#include "util/histogram.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

#include "util/simd.h"

namespace mca::util {

histogram::histogram(double lo, double hi, std::size_t bins)
    : lo_{lo}, width_{(hi - lo) / static_cast<double>(bins)}, counts_(bins, 0) {
  if (bins == 0) throw std::invalid_argument{"histogram: bins == 0"};
  if (hi <= lo) throw std::invalid_argument{"histogram: hi <= lo"};
}

// One bin increment per successful response (digest latency + per-group
// SLO histograms) and per series observation (log buckets).
// mca:hot-path-begin(histogram-add)
void histogram::add(double x) noexcept {
  const double offset = (x - lo_) / width_;
  std::size_t bin = 0;
  // Saturate in double space BEFORE the integer cast: casting a double
  // beyond the destination range (a far-out-of-range sample, or +inf from
  // an overflowing (x - lo) / width) is undefined behavior, not a big
  // number.  `>=` also routes +inf to the top bin; NaN fails both
  // comparisons and lands in bin 0 like any non-positive offset.
  const auto top = static_cast<double>(counts_.size() - 1);
  if (offset >= top) {
    bin = counts_.size() - 1;
  } else if (offset > 0) {
    bin = static_cast<std::size_t>(offset);
  }
  ++counts_[bin];
  ++total_;
}
// mca:hot-path-end

void histogram::merge(const histogram& other) {
  if (lo_ != other.lo_ || width_ != other.width_ ||
      counts_.size() != other.counts_.size()) {
    throw std::invalid_argument{"histogram: merge of mismatched layouts"};
  }
  // Bin-count addition is order-insensitive integer math, so the
  // vectorized kernel is bit-identical to the former scalar loop.
  simd::add_counts(counts_.data(), other.counts_.data(), counts_.size());
  total_ += other.total_;
}

void histogram::assign_difference(const histogram& cur, const histogram& prev) {
  if (lo_ != cur.lo_ || width_ != cur.width_ ||
      counts_.size() != cur.counts_.size() || lo_ != prev.lo_ ||
      width_ != prev.width_ || counts_.size() != prev.counts_.size()) {
    throw std::invalid_argument{"histogram: difference of mismatched layouts"};
  }
  if (prev.total_ > cur.total_) {
    throw std::invalid_argument{"histogram: difference would be negative"};
  }
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    counts_[b] = cur.counts_[b] - prev.counts_[b];
  }
  total_ = cur.total_ - prev.total_;
}

double histogram::bin_lower(std::size_t bin) const {
  if (bin >= counts_.size()) throw std::out_of_range{"histogram: bin index"};
  return lo_ + width_ * static_cast<double>(bin);
}

double histogram::quantile(double q) const {
  if (total_ == 0) throw std::logic_error{"histogram: quantile of empty"};
  // Negated-range form so NaN (which fails every comparison) is rejected
  // here instead of reaching the rank cast below, which would be UB.
  if (!(q >= 0.0 && q <= 1.0)) {
    throw std::invalid_argument{"histogram: q outside [0,1]"};
  }
  const auto target = static_cast<std::size_t>(
      q * static_cast<double>(total_ - 1));
  std::size_t seen = 0;
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    seen += counts_[b];
    if (seen > target) return bin_lower(b) + width_ / 2.0;
  }
  return bin_lower(counts_.size() - 1) + width_ / 2.0;
}

double histogram::quantile_interpolated(double q) const {
  if (total_ == 0) throw std::logic_error{"histogram: quantile of empty"};
  if (!(q >= 0.0 && q <= 1.0)) {  // negated form: NaN rejected, see quantile()
    throw std::invalid_argument{"histogram: q outside [0,1]"};
  }
  // Value of the k-th sample (0-based, ascending): the c samples in a bin
  // sit at evenly spaced offsets (j + 0.5)/c of the bin width, so within-
  // bin order is resolved uniformly.  One pass serves both ranks because
  // hi is either lo or its successor.
  const double rank = q * static_cast<double>(total_ - 1);
  const auto lo_rank = static_cast<std::size_t>(rank);
  const std::size_t hi_rank = std::min(lo_rank + 1, total_ - 1);
  const double frac = rank - static_cast<double>(lo_rank);
  double lo_value = 0.0;
  double hi_value = 0.0;
  std::size_t seen = 0;
  for (std::size_t b = 0; b < counts_.size() && seen <= hi_rank; ++b) {
    const std::size_t c = counts_[b];
    if (c == 0) continue;
    const auto sample_at = [&](std::size_t k) {
      return bin_lower(b) +
             width_ * (static_cast<double>(k - seen) + 0.5) /
                 static_cast<double>(c);
    };
    if (lo_rank >= seen && lo_rank < seen + c) lo_value = sample_at(lo_rank);
    if (hi_rank >= seen && hi_rank < seen + c) hi_value = sample_at(hi_rank);
    seen += c;
  }
  return lo_value + frac * (hi_value - lo_value);
}

void log_histogram::merge(const log_histogram& other) {
  if (counts_.size() != other.counts_.size()) {
    throw std::invalid_argument{"log_histogram: merge of mismatched layouts"};
  }
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    counts_[b] += other.counts_[b];
  }
  total_ += other.total_;
}

log_histogram::log_histogram(std::size_t max_buckets)
    : counts_(std::max<std::size_t>(max_buckets, 2), 0) {}

// mca:hot-path-begin(histogram-add)
void log_histogram::add(double x) noexcept {
  std::size_t bucket = 0;
  if (x >= 1.0) {
    // Clamp in double space first: log2(+inf) is +inf, and casting that
    // (or any exponent past the bucket range) to size_t is UB.  Finite
    // doubles have exponents < 1100, comfortably inside the clamp.
    const double exponent =
        std::min(std::log2(x), static_cast<double>(counts_.size() - 1));
    bucket = std::min(static_cast<std::size_t>(exponent) + 1,
                      counts_.size() - 1);
  }
  ++counts_[bucket];
  ++total_;
}
// mca:hot-path-end

double log_histogram::bucket_lower(std::size_t b) const noexcept {
  if (b == 0) return 0.0;
  return std::pow(2.0, static_cast<double>(b - 1));
}

std::string log_histogram::to_string() const {
  std::ostringstream out;
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    if (counts_[b] == 0) continue;
    out << "[" << bucket_lower(b) << ","
        << (b + 1 < counts_.size() ? bucket_lower(b + 1) : -1.0) << "): "
        << counts_[b] << " ";
  }
  return out.str();
}

}  // namespace mca::util
