#include "util/histogram.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

#include "util/simd.h"

namespace mca::util {

histogram::histogram(double lo, double hi, std::size_t bins)
    : lo_{lo}, width_{(hi - lo) / static_cast<double>(bins)}, counts_(bins, 0) {
  if (bins == 0) throw std::invalid_argument{"histogram: bins == 0"};
  if (hi <= lo) throw std::invalid_argument{"histogram: hi <= lo"};
}

void histogram::add(double x) noexcept {
  const double offset = (x - lo_) / width_;
  std::size_t bin = 0;
  if (offset > 0) {
    bin = std::min(static_cast<std::size_t>(offset), counts_.size() - 1);
  }
  ++counts_[bin];
  ++total_;
}

void histogram::merge(const histogram& other) {
  if (lo_ != other.lo_ || width_ != other.width_ ||
      counts_.size() != other.counts_.size()) {
    throw std::invalid_argument{"histogram: merge of mismatched layouts"};
  }
  // Bin-count addition is order-insensitive integer math, so the
  // vectorized kernel is bit-identical to the former scalar loop.
  simd::add_counts(counts_.data(), other.counts_.data(), counts_.size());
  total_ += other.total_;
}

double histogram::bin_lower(std::size_t bin) const {
  if (bin >= counts_.size()) throw std::out_of_range{"histogram: bin index"};
  return lo_ + width_ * static_cast<double>(bin);
}

double histogram::quantile(double q) const {
  if (total_ == 0) throw std::logic_error{"histogram: quantile of empty"};
  if (q < 0.0 || q > 1.0) throw std::invalid_argument{"histogram: q outside [0,1]"};
  const auto target = static_cast<std::size_t>(
      q * static_cast<double>(total_ - 1));
  std::size_t seen = 0;
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    seen += counts_[b];
    if (seen > target) return bin_lower(b) + width_ / 2.0;
  }
  return bin_lower(counts_.size() - 1) + width_ / 2.0;
}

log_histogram::log_histogram(std::size_t max_buckets)
    : counts_(std::max<std::size_t>(max_buckets, 2), 0) {}

void log_histogram::add(double x) noexcept {
  std::size_t bucket = 0;
  if (x >= 1.0) {
    bucket = std::min(static_cast<std::size_t>(std::log2(x)) + 1,
                      counts_.size() - 1);
  }
  ++counts_[bucket];
  ++total_;
}

double log_histogram::bucket_lower(std::size_t b) const noexcept {
  if (b == 0) return 0.0;
  return std::pow(2.0, static_cast<double>(b - 1));
}

std::string log_histogram::to_string() const {
  std::ostringstream out;
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    if (counts_[b] == 0) continue;
    out << "[" << bucket_lower(b) << ","
        << (b + 1 < counts_.size() ? bucket_lower(b + 1) : -1.0) << "): "
        << counts_[b] << " ";
  }
  return out.str();
}

}  // namespace mca::util
