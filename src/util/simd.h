// Portable SIMD kernels for the digest-merge path.
//
// Per-shard metric digests (240-bin latency histograms, Welford group
// stats) are merged once per replication and once per shard flush; after
// the backend-event overhaul those merges are a visible slice of the
// metrics phase.  The helpers here use GCC/Clang generic vector extensions
// — no intrinsics headers, no -march requirement, and a plain scalar loop
// on any other compiler — so the build stays dependency-free while gcc
// and clang emit SSE2/AVX/NEON adds for the baseline target.
//
// Only order-insensitive integer arithmetic is vectorized (lane grouping
// does not change a sum of u64s), so results are bit-identical to the
// scalar loops and digest fingerprints are unaffected.
#pragma once

#include <cstddef>
#include <cstring>

namespace mca::util::simd {

#if defined(__GNUC__) || defined(__clang__)
#define MCA_SIMD_GENERIC_VECTORS 1
#else
#define MCA_SIMD_GENERIC_VECTORS 0
#endif

/// dst[i] += src[i] over `n` unsigned counters — the histogram-merge
/// kernel.  Unaligned access goes through memcpy, which the vector
/// backends lower to plain vector loads/stores.
inline void add_counts(std::size_t* dst, const std::size_t* src,
                       std::size_t n) noexcept {
  std::size_t i = 0;
#if MCA_SIMD_GENERIC_VECTORS
  using count_x4
      __attribute__((vector_size(4 * sizeof(std::size_t)))) = std::size_t;
  for (; i + 4 <= n; i += 4) {
    count_x4 a;
    count_x4 b;
    std::memcpy(&a, dst + i, sizeof(a));
    std::memcpy(&b, src + i, sizeof(b));
    a += b;
    std::memcpy(dst + i, &a, sizeof(a));
  }
#endif
  for (; i < n; ++i) dst[i] += src[i];
}

}  // namespace mca::util::simd
