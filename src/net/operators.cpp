#include "net/operators.h"

#include <stdexcept>

namespace mca::net {

const char* to_string(technology t) noexcept {
  switch (t) {
    case technology::threeg: return "3G";
    case technology::lte: return "LTE";
  }
  return "unknown";
}

const std::vector<operator_profile>& netradar_operators() {
  // Fig. 11 / §VI-C.4: mean, median, SD in ms and sample counts per
  // operator and technology, exactly as printed in the paper.
  static const std::vector<operator_profile> operators = {
      {"alpha", {128.0, 51.0, 362.0}, {41.0, 34.0, 56.0}, 205'762, 182'549},
      {"beta", {141.0, 60.0, 376.0}, {36.0, 25.0, 70.0}, 448'942, 493'956},
      {"gamma", {137.0, 56.0, 379.0}, {42.0, 27.0, 84.0}, 191'973, 152'605},
  };
  return operators;
}

const operator_profile& operator_by_name(const std::string& name) {
  for (const auto& op : netradar_operators()) {
    if (op.name == name) return op;
  }
  throw std::out_of_range{"operator_by_name: unknown operator '" + name + "'"};
}

rtt_model calibrated_model(const operator_profile& profile, technology tech) {
  const auto& target = (tech == technology::threeg) ? profile.threeg
                                                    : profile.lte;
  const double diurnal = (tech == technology::threeg) ? 0.25 : 0.10;
  return rtt_model{fit_rtt_params(target), diurnal};
}

rtt_model default_lte_model() {
  // The grid-search calibration is a pure function of the published
  // operator numbers; fleet runs construct one model per shard, so fit
  // once per process and hand out copies.  fit_rtt_params itself splits
  // the grid across hardware threads (bit-identical to serial), so the
  // one-time cost shrinks with core count instead of serializing startup.
  // (Magic-static init is thread-safe; shards are built in parallel.)
  static const rtt_model model =
      calibrated_model(operator_by_name("beta"), technology::lte);
  return model;
}

}  // namespace mca::net
