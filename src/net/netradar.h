// NetRadar-like synthetic measurement campaign.
//
// The paper analyzes ~1.7M crowdsourced RTT samples.  This generator
// replays such a campaign against the calibrated operator models: samples
// are spread over the day following a plausible measurement-activity
// profile, and the aggregator reproduces the Fig. 11 hour-of-day curves
// and the per-operator summary statistics.
#pragma once

#include <cstddef>
#include <vector>

#include "net/operators.h"
#include "util/rng.h"
#include "util/stats.h"

namespace mca::net {

/// One synthetic measurement.
struct rtt_sample {
  double hour_of_day = 0.0;  ///< [0, 24)
  double rtt_ms = 0.0;
};

/// Generates `count` samples for one operator+technology.
std::vector<rtt_sample> generate_campaign(const operator_profile& profile,
                                          technology tech, std::size_t count,
                                          util::rng& rng);

/// Mean RTT per hour-of-day bucket (24 buckets), as plotted in Fig. 11.
struct hourly_series {
  std::vector<double> mean_rtt_ms;      // size 24
  std::vector<std::size_t> sample_count;  // size 24
};

hourly_series aggregate_hourly(const std::vector<rtt_sample>& samples);

/// Overall mean/median/SD of a campaign, for calibration checks.
util::summary campaign_summary(const std::vector<rtt_sample>& samples);

}  // namespace mca::net
