// The three anonymized Finnish mobile operators of the paper's Fig. 11.
//
// Profiles carry the exact per-technology aggregate statistics the paper
// reports; `calibrated_model` turns a profile into a samplable rtt_model
// whose analytic statistics match those numbers.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "net/rtt_model.h"

namespace mca::net {

/// Radio access technology, as compared in Fig. 11.
enum class technology { threeg, lte };

const char* to_string(technology t) noexcept;

/// One operator's published NetRadar aggregates.
struct operator_profile {
  std::string name;                 ///< "alpha" | "beta" | "gamma"
  rtt_target_stats threeg;
  rtt_target_stats lte;
  std::size_t samples_threeg = 0;   ///< dataset sizes reported by the paper
  std::size_t samples_lte = 0;
};

/// α, β, γ with the paper's §VI-C.4 numbers.
const std::vector<operator_profile>& netradar_operators();

/// Profile lookup; throws std::out_of_range on unknown name.
const operator_profile& operator_by_name(const std::string& name);

/// Calibrated samplable model for one operator+technology.  3G carries a
/// stronger diurnal congestion modulation than LTE, matching the paper's
/// hour-of-day curves.
rtt_model calibrated_model(const operator_profile& profile, technology tech);

/// The paper's system assumption (§IV-c): offloading happens over LTE.  A
/// convenient default link: operator β's calibrated LTE model.
rtt_model default_lte_model();

}  // namespace mca::net
