#include "net/rtt_model.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <limits>
#include <numbers>
#include <stdexcept>
#include <thread>
#include <vector>

namespace mca::net {
namespace {

double lognormal_cdf(double x, double mu, double sigma) {
  if (x <= 0.0) return 0.0;
  return 0.5 * std::erfc(-(std::log(x) - mu) / (sigma * std::numbers::sqrt2));
}

double uniform_cdf(double x, double lo, double hi) {
  if (x <= lo) return 0.0;
  if (x >= hi) return 1.0;
  return (x - lo) / (hi - lo);
}

double mixture_cdf(double x, const rtt_model_params& p) {
  const double body = lognormal_cdf(x, p.log_mu, p.log_sigma);
  if (p.spike_probability <= 0.0) return body;
  const double tail = uniform_cdf(x, p.spike_min_ms, p.spike_max_ms);
  return (1.0 - p.spike_probability) * body + p.spike_probability * tail;
}

}  // namespace

double mixture_mean(const rtt_model_params& p) {
  const double body = std::exp(p.log_mu + p.log_sigma * p.log_sigma / 2.0);
  const double tail = (p.spike_min_ms + p.spike_max_ms) / 2.0;
  return (1.0 - p.spike_probability) * body + p.spike_probability * tail;
}

double mixture_stddev(const rtt_model_params& p) {
  const double s2 = p.log_sigma * p.log_sigma;
  const double body_second_moment = std::exp(2.0 * p.log_mu + 2.0 * s2);
  const double spread = p.spike_max_ms - p.spike_min_ms;
  const double tail_mean = (p.spike_min_ms + p.spike_max_ms) / 2.0;
  const double tail_second_moment =
      tail_mean * tail_mean + spread * spread / 12.0;
  const double mean = mixture_mean(p);
  const double second_moment =
      (1.0 - p.spike_probability) * body_second_moment +
      p.spike_probability * tail_second_moment;
  return std::sqrt(std::max(second_moment - mean * mean, 0.0));
}

double mixture_median(const rtt_model_params& p) {
  double lo = 0.0;
  double hi = std::max(std::exp(p.log_mu + 6.0 * p.log_sigma), p.spike_max_ms);
  for (int iter = 0; iter < 80; ++iter) {
    const double mid = (lo + hi) / 2.0;
    if (mixture_cdf(mid, p) < 0.5) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return (lo + hi) / 2.0;
}

double fit_error(const rtt_model_params& p, const rtt_target_stats& target) {
  const double em = std::abs(mixture_mean(p) - target.mean_ms) / target.mean_ms;
  const double ed =
      std::abs(mixture_median(p) - target.median_ms) / target.median_ms;
  const double es =
      std::abs(mixture_stddev(p) - target.stddev_ms) / target.stddev_ms;
  return std::max({em, ed, es});
}

namespace {

/// Chooses log_mu so the mixture median equals the target exactly (the
/// median is strictly increasing in log_mu; 80 bisection steps suffice).
void solve_mu_for_median(rtt_model_params& p, double target_median) {
  double lo = std::log(target_median) - 4.0;
  double hi = std::log(target_median) + 2.0;
  for (int iter = 0; iter < 80; ++iter) {
    p.log_mu = (lo + hi) / 2.0;
    if (mixture_median(p) < target_median) {
      lo = p.log_mu;
    } else {
      hi = p.log_mu;
    }
  }
}

/// One grid cell's result: the trial parameters and their fit error.
struct fit_candidate {
  rtt_model_params params{};
  double err = std::numeric_limits<double>::infinity();
};

fit_candidate evaluate_candidate(double sigma, double p_spike, double max_mult,
                                 const rtt_target_stats& target) {
  fit_candidate c;
  c.params.log_sigma = sigma;
  c.params.spike_probability = p_spike;
  c.params.spike_min_ms = 3.0 * target.median_ms;
  c.params.spike_max_ms = max_mult * target.median_ms;
  solve_mu_for_median(c.params, target.median_ms);
  c.err = fit_error(c.params, target);
  return c;
}

/// Scans `cells` grid cells, range-split across `threads` workers, and
/// returns the minimum-error candidate.  Every cell is a pure function of
/// its flat index, slices are contiguous index ranges, and both the
/// per-slice scan and the slice-order reduction use strict `<` — so the
/// winner is the *first* occurrence of the minimum in global index order,
/// bit-identical to a serial left-to-right scan at any thread count.
template <typename CellFn>
fit_candidate scan_grid(std::size_t cells, unsigned threads,
                        const CellFn& cell) {
  auto scan_range = [&cell](std::size_t first, std::size_t last) {
    fit_candidate best;
    for (std::size_t i = first; i < last; ++i) {
      const fit_candidate c = cell(i);
      if (c.err < best.err) best = c;
    }
    return best;
  };
  if (threads <= 1 || cells < 2 * static_cast<std::size_t>(threads)) {
    return scan_range(0, cells);
  }
  const std::size_t slices = std::min<std::size_t>(threads, cells);
  std::vector<fit_candidate> results(slices);
  std::vector<std::thread> workers;
  workers.reserve(slices);
  for (std::size_t s = 0; s < slices; ++s) {
    const std::size_t first = cells * s / slices;
    const std::size_t last = cells * (s + 1) / slices;
    workers.emplace_back(
        [&results, &scan_range, s, first, last] {
          results[s] = scan_range(first, last);
        });
  }
  for (auto& w : workers) w.join();
  fit_candidate best;
  for (const auto& r : results) {
    if (r.err < best.err) best = r;
  }
  return best;
}

}  // namespace

rtt_model_params fit_rtt_params(const rtt_target_stats& target,
                                unsigned threads) {
  if (target.mean_ms <= 0.0 || target.median_ms <= 0.0 ||
      target.stddev_ms <= 0.0) {
    throw std::invalid_argument{"fit_rtt_params: targets must be positive"};
  }
  if (threads == 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }

  // Search over (sigma, spike probability, spike upper edge); for every
  // candidate the location log_mu is solved so the median is exact, which
  // reduces the problem to matching mean and SD.  Coarse grid, then three
  // refinement passes around the incumbent.  Each pass is embarrassingly
  // parallel (cells are independent), so scan_grid splits it range-wise;
  // the sigma values are pre-accumulated with the same `+= 0.1` recurrence
  // the original serial loop used, keeping every evaluated cell — and
  // therefore the fitted parameters — bit-identical at any thread count.
  std::vector<double> sigmas;
  for (double sigma = 0.2; sigma <= 1.8; sigma += 0.1) sigmas.push_back(sigma);
  static constexpr std::array<double, 8> kSpikeProbs = {
      0.0, 0.002, 0.005, 0.01, 0.02, 0.04, 0.07, 0.12};
  static constexpr std::array<double, 6> kMaxMults = {6.0,  12.0,  25.0,
                                                      50.0, 100.0, 180.0};

  fit_candidate best = scan_grid(
      sigmas.size() * kSpikeProbs.size() * kMaxMults.size(), threads,
      [&](std::size_t index) {
        const std::size_t mi = index % kMaxMults.size();
        const std::size_t pi = (index / kMaxMults.size()) % kSpikeProbs.size();
        const std::size_t si = index / (kMaxMults.size() * kSpikeProbs.size());
        return evaluate_candidate(sigmas[si], kSpikeProbs[pi], kMaxMults[mi],
                                  target);
      });

  double sigma_radius = 0.08;
  double p_radius = 0.35;    // relative
  double mult_radius = 0.5;  // relative
  for (int round = 0; round < 3; ++round) {
    const rtt_model_params centre = best.params;
    const double centre_mult = centre.spike_max_ms / target.median_ms;
    const fit_candidate refined = scan_grid(
        9 * 9 * 5, threads, [&](std::size_t index) {
          const int k = static_cast<int>(index % 5) - 2;
          const int j = static_cast<int>((index / 5) % 9) - 4;
          const int i = static_cast<int>(index / 45) - 4;
          const double sigma = std::clamp(
              centre.log_sigma + sigma_radius * i / 4.0, 0.05, 2.5);
          const double p_spike = std::clamp(
              centre.spike_probability * (1.0 + p_radius * j / 4.0), 0.0, 0.3);
          const double max_mult = std::clamp(
              centre_mult * (1.0 + mult_radius * k / 2.0), 4.0, 400.0);
          return evaluate_candidate(sigma, p_spike, max_mult, target);
        });
    if (refined.err < best.err) best = refined;
    sigma_radius *= 0.35;
    p_radius *= 0.35;
    mult_radius *= 0.35;
  }
  return best.params;
}

rtt_model::rtt_model(rtt_model_params params, double diurnal_amplitude)
    : params_{params}, diurnal_amplitude_{diurnal_amplitude} {
  // Normalize the busy-hour modulation so its 24h mean is exactly 1.
  double total = 0.0;
  constexpr int kSteps = 24 * 60;
  diurnal_norm_ = 1.0;
  for (int i = 0; i < kSteps; ++i) {
    total += diurnal_factor(24.0 * i / kSteps);
  }
  diurnal_norm_ = total / kSteps;
}

double rtt_model::diurnal_factor(double hour_of_day) const noexcept {
  // Two Gaussian congestion bumps: morning commute (09:00) and evening
  // streaming peak (20:00), with wrap-around distance on the 24h circle.
  auto bump = [hour_of_day](double center, double width) {
    double d = std::abs(hour_of_day - center);
    d = std::min(d, 24.0 - d);
    return std::exp(-d * d / (2.0 * width * width));
  };
  const double shape =
      1.0 + diurnal_amplitude_ * (0.6 * bump(9.0, 2.5) + bump(20.0, 3.0));
  return shape / diurnal_norm_;
}

double rtt_model::sample(util::rng& rng, double hour_of_day) const {
  double rtt;
  if (rng.bernoulli(params_.spike_probability)) {
    rtt = rng.uniform(params_.spike_min_ms, params_.spike_max_ms);
  } else {
    rtt = rng.lognormal(params_.log_mu, params_.log_sigma);
  }
  return rtt * diurnal_factor(hour_of_day);
}

}  // namespace mca::net
