#include "net/rtt_model.h"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

namespace mca::net {
namespace {

double lognormal_cdf(double x, double mu, double sigma) {
  if (x <= 0.0) return 0.0;
  return 0.5 * std::erfc(-(std::log(x) - mu) / (sigma * std::numbers::sqrt2));
}

double uniform_cdf(double x, double lo, double hi) {
  if (x <= lo) return 0.0;
  if (x >= hi) return 1.0;
  return (x - lo) / (hi - lo);
}

double mixture_cdf(double x, const rtt_model_params& p) {
  const double body = lognormal_cdf(x, p.log_mu, p.log_sigma);
  if (p.spike_probability <= 0.0) return body;
  const double tail = uniform_cdf(x, p.spike_min_ms, p.spike_max_ms);
  return (1.0 - p.spike_probability) * body + p.spike_probability * tail;
}

}  // namespace

double mixture_mean(const rtt_model_params& p) {
  const double body = std::exp(p.log_mu + p.log_sigma * p.log_sigma / 2.0);
  const double tail = (p.spike_min_ms + p.spike_max_ms) / 2.0;
  return (1.0 - p.spike_probability) * body + p.spike_probability * tail;
}

double mixture_stddev(const rtt_model_params& p) {
  const double s2 = p.log_sigma * p.log_sigma;
  const double body_mean = std::exp(p.log_mu + s2 / 2.0);
  const double body_second_moment = std::exp(2.0 * p.log_mu + 2.0 * s2);
  const double spread = p.spike_max_ms - p.spike_min_ms;
  const double tail_mean = (p.spike_min_ms + p.spike_max_ms) / 2.0;
  const double tail_second_moment =
      tail_mean * tail_mean + spread * spread / 12.0;
  const double mean = mixture_mean(p);
  const double second_moment =
      (1.0 - p.spike_probability) * body_second_moment +
      p.spike_probability * tail_second_moment;
  return std::sqrt(std::max(second_moment - mean * mean, 0.0));
}

double mixture_median(const rtt_model_params& p) {
  double lo = 0.0;
  double hi = std::max(std::exp(p.log_mu + 6.0 * p.log_sigma), p.spike_max_ms);
  for (int iter = 0; iter < 80; ++iter) {
    const double mid = (lo + hi) / 2.0;
    if (mixture_cdf(mid, p) < 0.5) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return (lo + hi) / 2.0;
}

double fit_error(const rtt_model_params& p, const rtt_target_stats& target) {
  const double em = std::abs(mixture_mean(p) - target.mean_ms) / target.mean_ms;
  const double ed =
      std::abs(mixture_median(p) - target.median_ms) / target.median_ms;
  const double es =
      std::abs(mixture_stddev(p) - target.stddev_ms) / target.stddev_ms;
  return std::max({em, ed, es});
}

namespace {

/// Chooses log_mu so the mixture median equals the target exactly (the
/// median is strictly increasing in log_mu; 80 bisection steps suffice).
void solve_mu_for_median(rtt_model_params& p, double target_median) {
  double lo = std::log(target_median) - 4.0;
  double hi = std::log(target_median) + 2.0;
  for (int iter = 0; iter < 80; ++iter) {
    p.log_mu = (lo + hi) / 2.0;
    if (mixture_median(p) < target_median) {
      lo = p.log_mu;
    } else {
      hi = p.log_mu;
    }
  }
}

}  // namespace

rtt_model_params fit_rtt_params(const rtt_target_stats& target) {
  if (target.mean_ms <= 0.0 || target.median_ms <= 0.0 ||
      target.stddev_ms <= 0.0) {
    throw std::invalid_argument{"fit_rtt_params: targets must be positive"};
  }

  // Search over (sigma, spike probability, spike upper edge); for every
  // candidate the location log_mu is solved so the median is exact, which
  // reduces the problem to matching mean and SD.  Coarse grid, then two
  // refinement passes around the incumbent.
  rtt_model_params best;
  double best_err = std::numeric_limits<double>::infinity();

  auto evaluate = [&](double sigma, double p_spike, double max_mult) {
    rtt_model_params trial;
    trial.log_sigma = sigma;
    trial.spike_probability = p_spike;
    trial.spike_min_ms = 3.0 * target.median_ms;
    trial.spike_max_ms = max_mult * target.median_ms;
    solve_mu_for_median(trial, target.median_ms);
    const double err = fit_error(trial, target);
    if (err < best_err) {
      best_err = err;
      best = trial;
    }
  };

  for (double sigma = 0.2; sigma <= 1.8; sigma += 0.1) {
    for (double p_spike : {0.0, 0.002, 0.005, 0.01, 0.02, 0.04, 0.07, 0.12}) {
      for (double max_mult : {6.0, 12.0, 25.0, 50.0, 100.0, 180.0}) {
        evaluate(sigma, p_spike, max_mult);
      }
    }
  }

  double sigma_radius = 0.08;
  double p_radius = 0.35;    // relative
  double mult_radius = 0.5;  // relative
  for (int round = 0; round < 3; ++round) {
    const rtt_model_params centre = best;
    const double centre_mult = centre.spike_max_ms / target.median_ms;
    for (int i = -4; i <= 4; ++i) {
      for (int j = -4; j <= 4; ++j) {
        for (int k = -2; k <= 2; ++k) {
          const double sigma = std::clamp(
              centre.log_sigma + sigma_radius * i / 4.0, 0.05, 2.5);
          const double p_spike = std::clamp(
              centre.spike_probability * (1.0 + p_radius * j / 4.0), 0.0, 0.3);
          const double max_mult = std::clamp(
              centre_mult * (1.0 + mult_radius * k / 2.0), 4.0, 400.0);
          evaluate(sigma, p_spike, max_mult);
        }
      }
    }
    sigma_radius *= 0.35;
    p_radius *= 0.35;
    mult_radius *= 0.35;
  }
  return best;
}

rtt_model::rtt_model(rtt_model_params params, double diurnal_amplitude)
    : params_{params}, diurnal_amplitude_{diurnal_amplitude} {
  // Normalize the busy-hour modulation so its 24h mean is exactly 1.
  double total = 0.0;
  constexpr int kSteps = 24 * 60;
  diurnal_norm_ = 1.0;
  for (int i = 0; i < kSteps; ++i) {
    total += diurnal_factor(24.0 * i / kSteps);
  }
  diurnal_norm_ = total / kSteps;
}

double rtt_model::diurnal_factor(double hour_of_day) const noexcept {
  // Two Gaussian congestion bumps: morning commute (09:00) and evening
  // streaming peak (20:00), with wrap-around distance on the 24h circle.
  auto bump = [hour_of_day](double center, double width) {
    double d = std::abs(hour_of_day - center);
    d = std::min(d, 24.0 - d);
    return std::exp(-d * d / (2.0 * width * width));
  };
  const double shape =
      1.0 + diurnal_amplitude_ * (0.6 * bump(9.0, 2.5) + bump(20.0, 3.0));
  return shape / diurnal_norm_;
}

double rtt_model::sample(util::rng& rng, double hour_of_day) const {
  double rtt;
  if (rng.bernoulli(params_.spike_probability)) {
    rtt = rng.uniform(params_.spike_min_ms, params_.spike_max_ms);
  } else {
    rtt = rng.lognormal(params_.log_mu, params_.log_sigma);
  }
  return rtt * diurnal_factor(hour_of_day);
}

}  // namespace mca::net
