#include "net/netradar.h"

#include <cmath>
#include <stdexcept>

namespace mca::net {
namespace {

/// Probability weight of a measurement landing at a given hour: phones are
/// mostly quiet at night, active through the day with an evening maximum.
double activity_weight(double hour) noexcept {
  auto bump = [hour](double center, double width) {
    double d = std::abs(hour - center);
    d = std::min(d, 24.0 - d);
    return std::exp(-d * d / (2.0 * width * width));
  };
  return 0.15 + bump(12.0, 4.0) + 1.2 * bump(19.5, 3.5);
}

/// Samples an hour of day by rejection against the activity profile.
double sample_hour(util::rng& rng) {
  // max weight is a bit over 2.3; 2.5 upper-bounds it.
  for (;;) {
    const double hour = rng.uniform(0.0, 24.0);
    if (rng.uniform(0.0, 2.5) < activity_weight(hour)) return hour;
  }
}

}  // namespace

std::vector<rtt_sample> generate_campaign(const operator_profile& profile,
                                          technology tech, std::size_t count,
                                          util::rng& rng) {
  const rtt_model model = calibrated_model(profile, tech);
  std::vector<rtt_sample> samples;
  samples.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const double hour = sample_hour(rng);
    samples.push_back({hour, model.sample(rng, hour)});
  }
  return samples;
}

hourly_series aggregate_hourly(const std::vector<rtt_sample>& samples) {
  hourly_series series;
  series.mean_rtt_ms.assign(24, 0.0);
  series.sample_count.assign(24, 0);
  std::vector<util::running_stats> buckets(24);
  for (const auto& s : samples) {
    auto bucket = static_cast<std::size_t>(s.hour_of_day);
    if (bucket >= 24) bucket = 23;
    buckets[bucket].add(s.rtt_ms);
  }
  for (std::size_t h = 0; h < 24; ++h) {
    series.mean_rtt_ms[h] = buckets[h].mean();
    series.sample_count[h] = buckets[h].count();
  }
  return series;
}

util::summary campaign_summary(const std::vector<rtt_sample>& samples) {
  if (samples.empty()) {
    throw std::invalid_argument{"campaign_summary: no samples"};
  }
  std::vector<double> rtts;
  rtts.reserve(samples.size());
  for (const auto& s : samples) rtts.push_back(s.rtt_ms);
  return util::summary_of(rtts);
}

}  // namespace mca::net
