// Cellular round-trip-time models.
//
// The paper grounds its LTE assumption in the NetRadar dataset (Fig. 11),
// reporting per-operator mean / median / standard deviation for 3G and LTE.
// We model RTT as a lognormal body (typical radio latency) plus a sparse
// uniform "spike" tail (handover stalls, congestion events): exactly the
// long-tail structure that makes cellular means sit far above medians.
// `fit_rtt_params` numerically calibrates the mixture so its analytic
// mean / median / SD match a published target triple.
#pragma once

#include "util/rng.h"

namespace mca::net {

/// Published aggregate statistics to calibrate against (milliseconds).
struct rtt_target_stats {
  double mean_ms = 0.0;
  double median_ms = 0.0;
  double stddev_ms = 0.0;
};

/// Lognormal-plus-spike mixture parameters.
struct rtt_model_params {
  double log_mu = 0.0;          ///< lognormal location (ln ms)
  double log_sigma = 1.0;       ///< lognormal shape
  double spike_probability = 0.0;
  double spike_min_ms = 0.0;    ///< uniform spike support
  double spike_max_ms = 0.0;
};

/// Analytic moments of the mixture (no sampling).
double mixture_mean(const rtt_model_params& p);
double mixture_stddev(const rtt_model_params& p);
/// Median via bisection on the mixture CDF.
double mixture_median(const rtt_model_params& p);

/// Calibrates mixture parameters to a target triple by coordinate grid
/// refinement on (log_mu, log_sigma, spike_probability, spike_max).
/// The grid is range-split across `threads` workers (0 = one per hardware
/// thread, 1 = serial); the result is bit-identical at any thread count
/// because every cell is a pure function of its index and the reduction
/// reproduces the serial first-minimum scan.
/// Throws std::invalid_argument on non-positive targets.
rtt_model_params fit_rtt_params(const rtt_target_stats& target,
                                unsigned threads = 0);

/// Relative fitting error of `p` against `target` (max over the 3 stats).
double fit_error(const rtt_model_params& p, const rtt_target_stats& target);

/// A samplable RTT source with optional diurnal congestion modulation.
///
/// `diurnal_amplitude` scales two Gaussian busy-hour bumps (09:00, 20:00);
/// the modulation is mean-normalized so calibrated aggregate statistics are
/// preserved.
class rtt_model {
 public:
  explicit rtt_model(rtt_model_params params, double diurnal_amplitude = 0.0);

  /// Draws one RTT (ms) at the given local time of day (hours, [0,24)).
  double sample(util::rng& rng, double hour_of_day = 12.0) const;

  /// Deterministic congestion factor at an hour of day (mean ≈ 1 over 24h).
  double diurnal_factor(double hour_of_day) const noexcept;

  const rtt_model_params& params() const noexcept { return params_; }

 private:
  rtt_model_params params_;
  double diurnal_amplitude_;
  double diurnal_norm_;
};

}  // namespace mca::net
