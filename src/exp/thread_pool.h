// Work-stealing thread pool for the experiment runner.
//
// Replication sweeps are embarrassingly parallel but uneven: an 8-hour
// closed-loop simulation can take several times longer than its sibling
// under a different seed (promotion cascades grow the fleet and the
// background-load fan-out with it).  A single shared queue would serialize
// dispatch; static partitioning would leave workers idle behind one slow
// shard.  Each worker therefore owns a deque — it pushes and pops at the
// front, and idle workers steal from the *back* of a victim's deque, so
// the oldest (statistically largest remaining) tasks migrate first.
//
// The pool executes tasks; it knows nothing about replications or
// determinism.  Tasks must not throw — the replication runner catches
// per-replication exceptions before they reach the pool (runner.h).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <latch>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace mca::obs {
class tracer;
}

namespace mca::exp {

/// Pool telemetry snapshot (monotonic since construction).  `executed` is
/// exact; `steals`/`idle_waits` depend on scheduling and are reported
/// through the observability registry as scheduling-dependent counters.
struct pool_counters {
  std::uint64_t executed = 0;    ///< tasks run to completion
  std::uint64_t steals = 0;      ///< tasks taken from another worker's deque
  std::uint64_t idle_waits = 0;  ///< times a worker blocked for work
};

class thread_pool {
 public:
  using task = std::function<void()>;

  /// Spawns `workers` threads (0 means hardware_workers()).
  explicit thread_pool(std::size_t workers = 0);
  /// Drains remaining tasks, then joins every worker.
  ~thread_pool();

  thread_pool(const thread_pool&) = delete;
  thread_pool& operator=(const thread_pool&) = delete;

  /// Enqueues a task; round-robins across worker deques so independent
  /// submissions start spread out even before any stealing happens.
  /// Throws std::invalid_argument on an empty task.
  void post(task fn);

  /// Blocks until every task posted so far has finished executing.
  void wait_idle();

  std::size_t worker_count() const noexcept { return queues_.size(); }
  /// Tasks stolen from another worker's deque (for tests/telemetry).
  std::size_t steal_count() const noexcept;
  /// Full telemetry snapshot (executed / steals / idle waits).
  pool_counters counters() const noexcept;

  /// Attaches a tracer: worker `w` records its idle gaps as pool_idle
  /// spans into `tracer->ring(ring_base + w)` (one ring per worker, single
  /// writer).  Call only while the pool is idle; nullptr detaches.
  void set_observability(obs::tracer* tracer, std::size_t ring_base);

  /// std::thread::hardware_concurrency with a floor of 1.
  static std::size_t hardware_workers() noexcept;

 private:
  struct worker_queue;

  void worker_loop(std::size_t self);
  bool try_acquire(std::size_t self, task& out);

  std::vector<std::unique_ptr<worker_queue>> queues_;
  std::vector<std::thread> threads_;

  mutable std::mutex state_mutex_;
  std::condition_variable work_ready_;
  std::condition_variable all_idle_;
  std::size_t pending_ = 0;  ///< queued + currently executing
  /// Net (pushed - claimed) deque entries.  Signed: a claim's decrement
  /// may land before the same task's post-push increment, so the counter
  /// can dip below zero transiently (see post()).
  std::ptrdiff_t queued_ = 0;
  std::size_t next_queue_ = 0;
  std::size_t steals_ = 0;
  std::uint64_t executed_ = 0;
  std::uint64_t idle_waits_ = 0;
  obs::tracer* tracer_ = nullptr;  ///< read under state_mutex_
  std::size_t trace_ring_base_ = 0;
  bool stopping_ = false;
};

/// Runs fn(0) .. fn(n - 1) on the pool and blocks until all complete.
/// `fn` must not throw (wrap it if it can — see runner.h).
template <typename Fn>
void parallel_for(thread_pool& pool, std::size_t n, Fn&& fn) {
  if (n == 0) return;
  std::latch done{static_cast<std::ptrdiff_t>(n)};
  for (std::size_t i = 0; i < n; ++i) {
    pool.post([&fn, &done, i] {
      fn(i);
      done.count_down();
    });
  }
  done.wait();
}

}  // namespace mca::exp
