// Work-stealing thread pool for the experiment runner.
//
// Replication sweeps are embarrassingly parallel but uneven: an 8-hour
// closed-loop simulation can take several times longer than its sibling
// under a different seed (promotion cascades grow the fleet and the
// background-load fan-out with it).  A single shared queue would serialize
// dispatch; static partitioning would leave workers idle behind one slow
// shard.  Each worker therefore owns a deque — it pushes and pops at the
// front, and idle workers steal from the *back* of a victim's deque, so
// the oldest (statistically largest remaining) tasks migrate first.
//
// The pool executes tasks; it knows nothing about replications or
// determinism.  Tasks must not throw — the replication runner catches
// per-replication exceptions before they reach the pool (runner.h).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <latch>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace mca::exp {

class thread_pool {
 public:
  using task = std::function<void()>;

  /// Spawns `workers` threads (0 means hardware_workers()).
  explicit thread_pool(std::size_t workers = 0);
  /// Drains remaining tasks, then joins every worker.
  ~thread_pool();

  thread_pool(const thread_pool&) = delete;
  thread_pool& operator=(const thread_pool&) = delete;

  /// Enqueues a task; round-robins across worker deques so independent
  /// submissions start spread out even before any stealing happens.
  /// Throws std::invalid_argument on an empty task.
  void post(task fn);

  /// Blocks until every task posted so far has finished executing.
  void wait_idle();

  std::size_t worker_count() const noexcept { return queues_.size(); }
  /// Tasks stolen from another worker's deque (for tests/telemetry).
  std::size_t steal_count() const noexcept;

  /// std::thread::hardware_concurrency with a floor of 1.
  static std::size_t hardware_workers() noexcept;

 private:
  struct worker_queue;

  void worker_loop(std::size_t self);
  bool try_acquire(std::size_t self, task& out);

  std::vector<std::unique_ptr<worker_queue>> queues_;
  std::vector<std::thread> threads_;

  mutable std::mutex state_mutex_;
  std::condition_variable work_ready_;
  std::condition_variable all_idle_;
  std::size_t pending_ = 0;  ///< queued + currently executing
  /// Net (pushed - claimed) deque entries.  Signed: a claim's decrement
  /// may land before the same task's post-push increment, so the counter
  /// can dip below zero transiently (see post()).
  std::ptrdiff_t queued_ = 0;
  std::size_t next_queue_ = 0;
  std::size_t steals_ = 0;
  bool stopping_ = false;
};

/// Runs fn(0) .. fn(n - 1) on the pool and blocks until all complete.
/// `fn` must not throw (wrap it if it can — see runner.h).
template <typename Fn>
void parallel_for(thread_pool& pool, std::size_t n, Fn&& fn) {
  if (n == 0) return;
  std::latch done{static_cast<std::ptrdiff_t>(n)};
  for (std::size_t i = 0; i < n; ++i) {
    pool.post([&fn, &done, i] {
      fn(i);
      done.count_down();
    });
  }
  done.wait();
}

}  // namespace mca::exp
