// Wall-clock measurement helpers shared by the perf harnesses
// (micro_ops, fig_suite) — previously a private copy in each bench.
//
// mca-lint: allow-file(det-wallclock) bench timing harness: wall time IS
// the measurement here; nothing in this header feeds a digest or
// fingerprint (the determinism gates compare digests, not wall times).
#pragma once

#include <chrono>
#include <utility>

namespace mca::exp {

/// Wall time of one fn() call, in seconds.
template <typename Fn>
double seconds_of(Fn&& fn) {
  const auto start = std::chrono::steady_clock::now();
  std::forward<Fn>(fn)();
  const auto stop = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(stop - start).count();
}

/// Best-of-N wall time of fn() in seconds.  The early trials double as
/// warm-up (caches, page faults, frequency scaling); taking the minimum
/// rather than the mean discards scheduler noise, which only ever adds.
template <typename Fn>
double best_seconds(int trials, Fn&& fn) {
  double best = 1e30;
  for (int t = 0; t < trials; ++t) {
    const double s = seconds_of(fn);
    if (s < best) best = s;
  }
  return best;
}

}  // namespace mca::exp
