// Declarative closed-loop experiment scenarios and their replicated,
// deterministically merged metrics.
//
// A `scenario_spec` describes one §VI-C-style experiment — device
// population, workload model, group backends, provisioning policy,
// duration — as plain data instead of callbacks, so the runner can
// materialize a fresh `core::system_config` (with a fresh rng stream) for
// every replication.  `run_scenario` farms the replications out to the
// work-stealing pool and folds the per-replication digests into an
// `aggregate_metrics` whose bytes depend only on (spec, plan), never on
// thread count or completion order.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/predictor.h"
#include "core/system.h"
#include "exp/runner.h"
#include "fault/fault_program.h"
#include "exp/thread_pool.h"
#include "util/histogram.h"
#include "util/stats.h"

namespace mca::exp {

/// Task mix of the workload (maps onto workload::*_source factories).
enum class task_mix { static_minimax, random_pool, heavy_pool, weighted_pool };
/// Inter-arrival model per device.
enum class gap_model { study_sessions, exponential, fixed };

const char* to_string(task_mix mix) noexcept;
const char* to_string(gap_model model) noexcept;

/// Full declarative description of one closed-loop experiment.
struct scenario_spec {
  std::string name = "closed_loop";

  // --- deployment ---
  std::vector<core::group_backend_spec> groups = {
      {1, "t2.nano", 1, 4.0},
      {2, "t2.large", 1, 30.0},
      {3, "m4.4xlarge", 1, 100.0},
  };
  std::size_t max_total_instances = 20;  ///< CC account cap
  util::time_ms slot_length = util::hours(1);
  core::prediction_mode predictor_mode = core::prediction_mode::successor;
  bool cumulative_capacity = false;

  // --- workload ---
  std::size_t user_count = 100;
  util::time_ms duration = util::hours(8);
  task_mix tasks = task_mix::static_minimax;
  /// weighted_pool: one weight per pool task, drawn via an O(1) alias
  /// table (ignored by the other mixes).
  std::vector<double> task_weights;
  gap_model gaps = gap_model::study_sessions;
  /// study_sessions: probability the next gap comes from the smartphone
  /// study band (the rest are lognormal between-session idle periods).
  double session_probability = 0.8;
  util::time_ms idle_gap_mean = util::minutes(55.0);
  double idle_gap_sigma = 0.6;
  /// exponential: per-device arrival rate.
  double arrival_rate_hz = 0.01;
  /// fixed: constant per-device gap.
  util::time_ms fixed_gap = util::seconds(30.0);

  // --- promotion ---
  double promotion_probability = 1.0 / 50.0;
  bool allow_demotion = false;

  // --- induced background load ---
  std::size_t background_requests_per_burst = 50;
  util::time_ms background_burst_period = util::seconds(2.0);

  // --- fleet (src/fleet) ---
  /// Shard count fleet::run_fleet splits the population into when the
  /// caller does not override it (<= 1 means the scenario is meant to run
  /// monolithically).
  std::size_t fleet_shards = 0;
  /// Account-wide instance cap of the fleet's batched ILP; 0 falls back to
  /// max_total_instances.  Distinct knob because one shard's cap and the
  /// whole account's cap differ by orders of magnitude at fleet scale.
  std::size_t fleet_max_total_instances = 0;

  // --- fault injection & resilience (src/fault) ---
  /// Deterministic availability hazards (spot preemption, outage windows,
  /// cold starts) plus the retry/backoff/local-fallback knobs.  Inert by
  /// default; validate() rejects malformed programs against `duration`.
  /// Every replication shares one expanded fault trace (seeded from
  /// base_seed), modelling a common environment across the sweep.
  fault::fault_program faults;

  /// Experiment seed; replication i draws from rng::split(seed, i) (or
  /// from the plan's explicit per-replication seeds).
  std::uint64_t base_seed = 2017;

  /// The plan implied by the spec: `replications` splits of base_seed.
  replication_plan plan(std::size_t replications) const {
    return replication_plan::sweep(base_seed, replications);
  }
};

/// Validates a spec before materialization.  Rejects a zero user_count, a
/// non-positive duration or slot_length, an empty group list, a
/// session_probability outside [0, 1], and degenerate weighted_pool
/// weights with an error naming the field, instead of silently producing
/// a degenerate run.  Throws std::invalid_argument.
void validate(const scenario_spec& spec);

/// Same, plus the checks that need the task pool (weighted_pool weight
/// arity) — the sweep entry points use this so a bad spec fails once,
/// upfront, not once per replication.
void validate(const scenario_spec& spec, const tasks::task_pool& pool);

/// Max group id + 1 across the spec's backends (and the implicit initial
/// group) — the indexing every per-group digest vector uses.
std::size_t group_count_of(const scenario_spec& spec);

/// Materializes the callback-based system config for one replication.
/// `stream` provides all of the replication's randomness; it is advanced.
/// Validates the spec first (see validate()).
core::system_config make_system_config(const scenario_spec& spec,
                                       const tasks::task_pool& pool,
                                       util::rng& stream);

/// Runs one replication in full, returning the raw metrics (for benches
/// that plot per-request series).  Deterministic in (spec, context).
core::system_metrics run_replication(const scenario_spec& spec,
                                     const tasks::task_pool& pool,
                                     const replication_context& context);

/// The per-replication digest that survives into the merge: everything
/// the figure benches aggregate, nothing order- or id-dependent.
struct replication_metrics {
  std::uint64_t seed = 0;
  std::size_t requests = 0;
  std::size_t successes = 0;
  std::uint64_t promotions = 0;
  std::uint64_t demotions = 0;
  std::uint64_t background_submitted = 0;
  double total_cost_usd = 0.0;
  double mean_prediction_accuracy = 0.0;  ///< 0 when no slot was scored
  std::size_t scored_slots = 0;
  util::running_stats response;      ///< successful foreground responses
  util::histogram latency;           ///< same responses, binned
  std::vector<util::running_stats> group_response;   ///< by group id
  std::vector<std::uint64_t> group_successes;        ///< by group id
  std::vector<util::running_stats> group_instances;  ///< planned, per slot

  explicit replication_metrics(std::size_t group_count = 0);
};

/// Latency histogram layout shared by every digest (so merges line up).
util::histogram make_latency_histogram();

/// Digests one replication's raw metrics.  `group_count` must cover every
/// group id in the spec (core::offloading_system::group_count()).
replication_metrics digest_metrics(const core::system_metrics& metrics,
                                   std::size_t group_count,
                                   std::uint64_t seed);

/// The deterministic merge of a replication sweep.
struct aggregate_metrics {
  std::size_t replications = 0;
  std::size_t requests = 0;
  std::size_t successes = 0;
  std::uint64_t promotions = 0;
  std::uint64_t demotions = 0;
  std::uint64_t background_submitted = 0;
  util::running_stats cost_usd;       ///< per-replication totals
  util::running_stats accuracy;       ///< per-replication means
  util::running_stats response;       ///< pooled successful responses
  util::histogram latency;            ///< pooled, same layout as digests
  std::vector<util::running_stats> group_response;
  std::vector<std::uint64_t> group_successes;
  std::vector<util::running_stats> group_instances;

  explicit aggregate_metrics(std::size_t group_count = 0);

  /// Successful / issued foreground requests, in [0, 1].
  double acceptance_rate() const noexcept;

  /// FNV-1a over every count and double bit pattern in the aggregate.
  /// Two aggregates are byte-identical iff their fingerprints match (up
  /// to hash collision); used to assert thread-count independence.
  std::uint64_t fingerprint() const noexcept;
};

/// Folds digests in index order.  Must be called with the full, already
/// index-ordered result span (run_replications guarantees that order).
aggregate_metrics merge_replications(
    std::span<const replication_metrics> ordered);

/// One scenario, fully replicated and merged.
struct scenario_result {
  aggregate_metrics aggregate;
  std::vector<replication_metrics> per_replication;  ///< successful, ordered
  std::vector<replication_error> errors;
  double wall_seconds = 0.0;
};

/// Runs every replication of `plan` on `pool` and merges.  Failed
/// replications surface in `errors` and are excluded from the merge.
scenario_result run_scenario(const scenario_spec& spec,
                             const replication_plan& plan,
                             const tasks::task_pool& task_pool,
                             thread_pool& pool);

/// The named closed-loop scenarios the fig_suite CLI exposes
/// (fig9_closed_loop, fig10_adaptive, fleet, smoke).
std::vector<scenario_spec> builtin_scenarios();

}  // namespace mca::exp
