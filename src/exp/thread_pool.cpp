#include "exp/thread_pool.h"

#include <stdexcept>
#include <utility>

#include "obs/tracer.h"

namespace mca::exp {

/// One worker's deque.  The owner pushes/pops at the front; thieves take
/// from the back.  A plain mutex per deque is plenty here: tasks are whole
/// simulations (milliseconds to seconds), so queue traffic is cold.
struct thread_pool::worker_queue {
  std::mutex mutex;
  std::deque<task> tasks;
};

std::size_t thread_pool::hardware_workers() noexcept {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : n;
}

thread_pool::thread_pool(std::size_t workers) {
  if (workers == 0) workers = hardware_workers();
  queues_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    queues_.push_back(std::make_unique<worker_queue>());
  }
  threads_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    threads_.emplace_back([this, i] { worker_loop(i); });
  }
}

thread_pool::~thread_pool() {
  wait_idle();
  {
    std::lock_guard lock{state_mutex_};
    stopping_ = true;
  }
  work_ready_.notify_all();
  for (auto& thread : threads_) thread.join();
}

void thread_pool::post(task fn) {
  if (!fn) throw std::invalid_argument{"thread_pool: empty task"};
  std::size_t target = 0;
  {
    std::lock_guard lock{state_mutex_};
    // pending_ rises before the task is reachable, so a racing completion
    // can never drive it through zero and release wait_idle() early.
    ++pending_;
    target = next_queue_;
    next_queue_ = (next_queue_ + 1) % queues_.size();
  }
  {
    std::lock_guard lock{queues_[target]->mutex};
    queues_[target]->tasks.push_front(std::move(fn));
  }
  // queued_ rises only after the task is actually in a deque: a worker
  // whose wait predicate sees queued_ > 0 is guaranteed to find work on
  // its sweep (no busy re-sweeping against a not-yet-pushed task).  The
  // notify follows the increment, so a worker that went to sleep between
  // this push and this increment is re-woken here.  State and deque locks
  // are never held together, so there is no lock cycle with try_acquire.
  {
    std::lock_guard lock{state_mutex_};
    ++queued_;
  }
  work_ready_.notify_one();
}

bool thread_pool::try_acquire(std::size_t self, task& out) {
  const auto claim = [this](worker_queue& queue, bool steal,
                            task& slot) {
    std::lock_guard lock{queue.mutex};
    if (queue.tasks.empty()) return false;
    if (steal) {
      slot = std::move(queue.tasks.back());
      queue.tasks.pop_back();
    } else {
      slot = std::move(queue.tasks.front());
      queue.tasks.pop_front();
    }
    return true;
  };

  if (claim(*queues_[self], false, out)) {
    std::lock_guard state{state_mutex_};
    --queued_;
    return true;
  }
  for (std::size_t offset = 1; offset < queues_.size(); ++offset) {
    if (claim(*queues_[(self + offset) % queues_.size()], true, out)) {
      std::lock_guard state{state_mutex_};
      --queued_;
      ++steals_;
      return true;
    }
  }
  return false;
}

void thread_pool::worker_loop(std::size_t self) {
  for (;;) {
    task fn;
    if (try_acquire(self, fn)) {
      fn();
      std::lock_guard lock{state_mutex_};
      ++executed_;
      if (--pending_ == 0) all_idle_.notify_all();
      continue;
    }
    std::unique_lock lock{state_mutex_};
    // `queued_ > 0` re-checked under the lock closes the lost-wakeup
    // window between a failed sweep and the wait: a task enqueued in that
    // window leaves the counter positive, so the wait falls straight
    // through and the sweep runs again.  (A sweep can still come back
    // empty if a sibling claimed the task first — that is just another
    // pass through the loop.)
    if (!stopping_ && queued_ <= 0) {
      ++idle_waits_;
      obs::tracer* const tracer = tracer_;
      const std::size_t ring = trace_ring_base_ + self;
      const double idle_from = tracer != nullptr ? tracer->now_us() : 0.0;
      work_ready_.wait(lock, [this] { return stopping_ || queued_ > 0; });
      if (tracer != nullptr) {
        obs::span_record span;
        span.kind = obs::span_kind::pool_idle;
        span.wall_start_us = idle_from;
        span.wall_dur_us = tracer->now_us() - idle_from;
        span.arg_a = self;
        tracer->ring(ring).push(span);
      }
    }
    if (stopping_) return;
  }
}

void thread_pool::wait_idle() {
  std::unique_lock lock{state_mutex_};
  all_idle_.wait(lock, [this] { return pending_ == 0; });
}

std::size_t thread_pool::steal_count() const noexcept {
  std::lock_guard lock{state_mutex_};
  return steals_;
}

pool_counters thread_pool::counters() const noexcept {
  std::lock_guard lock{state_mutex_};
  return {executed_, static_cast<std::uint64_t>(steals_), idle_waits_};
}

void thread_pool::set_observability(obs::tracer* tracer,
                                    std::size_t ring_base) {
  std::lock_guard lock{state_mutex_};
  tracer_ = tracer;
  trace_ring_base_ = ring_base;
}

}  // namespace mca::exp
