// Single-server load curves — the warm-up/measure loop that used to be
// copy-pasted across the figure benches (Fig. 5 per-level curves, Fig. 7c
// stability curves), folded into the experiment runner.
//
// One instance of `type_name` faces `rounds` concurrent bursts at each
// load level; the response summary per level forms the curve.  Levels are
// independent experiments: each draws from its own rng::split stream, so
// a curve is deterministic whether its levels run serially or fanned out
// over the pool.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "tasks/task.h"
#include "util/stats.h"

namespace mca::exp {

struct load_curve_point {
  std::size_t users = 0;
  util::summary response;
};

struct load_curve_config {
  std::vector<std::size_t> levels = {1,  10, 20, 30, 40, 50,
                                     60, 70, 80, 90, 100};
  std::size_t rounds = 6;
  std::uint64_t seed = 5'000;
};

/// Response-vs-concurrent-users curve of one instance type under a fixed
/// request (Fig. 5 / Fig. 7c methodology: bursts with 1-minute
/// cool-downs).  Throws std::invalid_argument on an unknown type name.
std::vector<load_curve_point> response_vs_users(
    const std::string& type_name, tasks::task_request request,
    const load_curve_config& config);

}  // namespace mca::exp
