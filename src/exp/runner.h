// Replication runner: farm N independent replications out to the pool,
// collect results in replication order.
//
// Determinism contract: a replication is a pure function of its
// (seed, index) pair — it draws randomness only from the rng stream the
// context hands it (util::rng::split), never from wall clock, thread id,
// or shared mutable state.  Results land in a slot array indexed by
// replication, and any merge runs *after* the pool drains, walking that
// array in index order — so the merged output is bit-identical whatever
// the thread count or completion order.
//
// A replication that throws is never silently dropped: its index, seed,
// and message are recorded in the outcome's `errors`, and the remaining
// replications still run to completion.
#pragma once

#include <algorithm>
#include <cstdint>
#include <exception>
#include <mutex>
#include <optional>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "exp/thread_pool.h"
#include "util/rng.h"

namespace mca::exp {

/// Which replications to run: one entry per replication, carrying the
/// seed that replication's rng stream is split from.
struct replication_plan {
  std::vector<std::uint64_t> seeds;

  std::size_t count() const noexcept { return seeds.size(); }

  /// The standard seed sweep: `count` replications of one experiment
  /// seed; replication i draws from rng::split(base_seed, i).
  static replication_plan sweep(std::uint64_t base_seed, std::size_t count) {
    replication_plan plan;
    plan.seeds.assign(count, base_seed);
    return plan;
  }

  /// One replication per explicit seed (e.g. a --seeds CLI list);
  /// replication i draws from rng::split(seeds[i], i).
  static replication_plan explicit_seeds(std::vector<std::uint64_t> seeds) {
    replication_plan plan;
    plan.seeds = std::move(seeds);
    return plan;
  }
};

/// Handed to the replication body: identity plus the independent rng
/// stream this replication must draw all randomness from.
struct replication_context {
  std::size_t index = 0;
  std::uint64_t seed = 0;

  util::rng stream() const noexcept { return util::rng::split(seed, index); }
};

/// A replication that threw, reported instead of dropped.
struct replication_error {
  std::size_t index = 0;
  std::uint64_t seed = 0;
  std::string message;
};

/// All replications of one plan: per-index results (nullopt where that
/// replication failed) plus the failures themselves.
template <typename T>
struct replication_outcome {
  std::vector<std::optional<T>> results;  ///< indexed by replication
  std::vector<replication_error> errors;  ///< ascending by index

  std::size_t completed() const noexcept {
    std::size_t n = 0;
    for (const auto& r : results) {
      if (r.has_value()) ++n;
    }
    return n;
  }
};

/// Runs fn(context) for every replication in the plan on `pool`.
/// T = fn's return type; results are positioned by replication index.
template <typename Fn>
auto run_replications(thread_pool& pool, const replication_plan& plan,
                      Fn&& fn)
    -> replication_outcome<
        std::invoke_result_t<Fn&, const replication_context&>> {
  using T = std::invoke_result_t<Fn&, const replication_context&>;
  static_assert(!std::is_void_v<T>,
                "replication body must return its metrics");
  replication_outcome<T> outcome;
  outcome.results.resize(plan.count());
  std::mutex error_mutex;
  parallel_for(pool, plan.count(), [&](std::size_t i) {
    const replication_context context{i, plan.seeds[i]};
    try {
      outcome.results[i].emplace(fn(context));
    } catch (const std::exception& e) {
      std::lock_guard lock{error_mutex};
      outcome.errors.push_back({i, context.seed, e.what()});
    } catch (...) {
      std::lock_guard lock{error_mutex};
      outcome.errors.push_back({i, context.seed, "unknown exception"});
    }
  });
  std::sort(outcome.errors.begin(), outcome.errors.end(),
            [](const replication_error& a, const replication_error& b) {
              return a.index < b.index;
            });
  return outcome;
}

/// Order-preserving parallel map over [0, n): the pool-backed drop-in for
/// a bench's `for (config : configs)` loop.  If any iteration throws, the
/// lowest-index exception is rethrown after every iteration finished.
template <typename Fn>
auto parallel_map(thread_pool& pool, std::size_t n, Fn&& fn)
    -> std::vector<std::invoke_result_t<Fn&, std::size_t>> {
  using T = std::invoke_result_t<Fn&, std::size_t>;
  std::vector<std::optional<T>> slots(n);
  std::vector<std::exception_ptr> thrown(n);
  parallel_for(pool, n, [&](std::size_t i) {
    try {
      slots[i].emplace(fn(i));
    } catch (...) {
      thrown[i] = std::current_exception();
    }
  });
  for (std::size_t i = 0; i < n; ++i) {
    if (thrown[i]) std::rethrow_exception(thrown[i]);
  }
  std::vector<T> results;
  results.reserve(n);
  for (auto& slot : slots) results.push_back(std::move(*slot));
  return results;
}

}  // namespace mca::exp
