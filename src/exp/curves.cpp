#include "exp/curves.h"

#include "cloud/instance.h"
#include "sim/simulation.h"
#include "util/rng.h"
#include "workload/generator.h"

namespace mca::exp {

std::vector<load_curve_point> response_vs_users(
    const std::string& type_name, tasks::task_request request,
    const load_curve_config& config) {
  const auto& type = cloud::type_by_name(type_name);
  std::vector<load_curve_point> curve;
  curve.reserve(config.levels.size());
  for (const std::size_t users : config.levels) {
    // Keyed by the load level, not by loop position, so a reordered or
    // filtered level list reproduces the exact same points.
    util::rng stream = util::rng::split(config.seed, users);
    sim::simulation sim;
    cloud::instance server{sim, 1, type, stream.fork()};
    std::vector<double> responses;
    workload::concurrent_config load;
    load.users = users;
    load.rounds = config.rounds;
    workload::concurrent_generator generator{
        sim, workload::static_source(request),
        [&](const workload::offload_request& r) {
          server.submit(r.work.work_units(), [&responses](double t, bool) {
            responses.push_back(t);
          });
        },
        load, stream.fork()};
    sim.run();
    curve.push_back({users, util::summary_of(responses)});
  }
  return curve;
}

}  // namespace mca::exp
