#include "exp/scenario.h"

#include <algorithm>
#include <bit>
#include <chrono>
#include <cmath>
#include <memory>
#include <stdexcept>
#include <utility>

#include "client/usage_trace.h"
#include "workload/generator.h"

namespace mca::exp {

namespace {

/// FNV-1a accumulator over the aggregate's scalar fields.
struct fingerprint_state {
  std::uint64_t hash = 0xcbf29ce484222325ULL;

  void word(std::uint64_t w) noexcept {
    for (int byte = 0; byte < 8; ++byte) {
      hash ^= (w >> (8 * byte)) & 0xffu;
      hash *= 0x100000001b3ULL;
    }
  }
  void real(double x) noexcept { word(std::bit_cast<std::uint64_t>(x)); }
  void stats(const util::running_stats& s) noexcept {
    word(s.count());
    real(s.mean());
    real(s.variance());
    real(s.min());
    real(s.max());
  }
};

}  // namespace

const char* to_string(task_mix mix) noexcept {
  switch (mix) {
    case task_mix::static_minimax: return "static_minimax";
    case task_mix::random_pool: return "random_pool";
    case task_mix::heavy_pool: return "heavy_pool";
    case task_mix::weighted_pool: return "weighted_pool";
  }
  return "?";
}

const char* to_string(gap_model model) noexcept {
  switch (model) {
    case gap_model::study_sessions: return "study_sessions";
    case gap_model::exponential: return "exponential";
    case gap_model::fixed: return "fixed";
  }
  return "?";
}

std::size_t group_count_of(const scenario_spec& spec) {
  group_id max_group = 1;
  for (const auto& g : spec.groups) max_group = std::max(max_group, g.group);
  return static_cast<std::size_t>(max_group) + 1;
}

void validate(const scenario_spec& spec) {
  const auto reject = [&](const char* what) {
    throw std::invalid_argument{"scenario_spec '" + spec.name + "': " + what};
  };
  if (spec.user_count == 0) reject("user_count must be > 0");
  if (!(spec.duration > 0.0)) reject("duration must be positive");
  if (!(spec.slot_length > 0.0)) reject("slot_length must be positive");
  if (spec.groups.empty()) reject("groups must not be empty");
  if (!(spec.session_probability >= 0.0 && spec.session_probability <= 1.0)) {
    reject("session_probability must be in [0, 1]");
  }
  if (spec.tasks == task_mix::weighted_pool) {
    if (spec.task_weights.empty()) reject("weighted_pool requires task_weights");
    double total = 0.0;
    for (const double w : spec.task_weights) {
      if (w < 0.0) reject("task_weights must be non-negative");
      total += w;
    }
    if (!(total > 0.0)) reject("task_weights must have a positive sum");
  }
  // Malformed fault programs (negative hazards, outage windows outside
  // the run, a zero retry budget with fallback disabled) fail here, once,
  // with the offending field named — not once per replication.
  fault::validate(spec.faults, spec.duration,
                  ("scenario_spec '" + spec.name + "'").c_str());
}

void validate(const scenario_spec& spec, const tasks::task_pool& pool) {
  validate(spec);
  if (spec.tasks == task_mix::weighted_pool &&
      spec.task_weights.size() != pool.size()) {
    throw std::invalid_argument{"scenario_spec '" + spec.name +
                                "': task_weights needs one entry per pool "
                                "task"};
  }
}

core::system_config make_system_config(const scenario_spec& spec,
                                       const tasks::task_pool& pool,
                                       util::rng& stream) {
  validate(spec);
  core::system_config config;
  config.groups = spec.groups;
  config.user_count = spec.user_count;
  config.slot_length = spec.slot_length;
  config.max_total_instances = spec.max_total_instances;
  config.predictor_mode = spec.predictor_mode;
  config.cumulative_capacity = spec.cumulative_capacity;
  config.background_requests_per_burst = spec.background_requests_per_burst;
  config.background_burst_period = spec.background_burst_period;
  config.allow_demotion = spec.allow_demotion;
  config.seed = stream();

  switch (spec.tasks) {
    case task_mix::static_minimax:
      config.tasks = workload::static_source(pool.static_minimax_request());
      break;
    case task_mix::random_pool:
      config.tasks = workload::random_pool_source(pool);
      break;
    case task_mix::heavy_pool:
      config.tasks = workload::heavy_pool_source(pool);
      break;
    case task_mix::weighted_pool:
      config.tasks = workload::weighted_pool_source(pool, spec.task_weights);
      break;
  }

  switch (spec.gaps) {
    case gap_model::study_sessions: {
      // Each replication synthesizes its own smartphone study, so the
      // empirical gap distribution itself varies across the sweep.
      auto study = std::make_shared<util::empirical_distribution>(
          client::study_interarrival_distribution({}, stream()));
      const double in_session = spec.session_probability;
      const double idle_mu = std::log(spec.idle_gap_mean);
      const double idle_sigma = spec.idle_gap_sigma;
      config.gaps = [study, in_session, idle_mu, idle_sigma](util::rng& rng) {
        if (rng.bernoulli(in_session)) return study->sample(rng);
        return rng.lognormal(idle_mu, idle_sigma);
      };
      break;
    }
    case gap_model::exponential:
      config.gaps = workload::exponential_interarrival(spec.arrival_rate_hz);
      break;
    case gap_model::fixed:
      config.gaps = workload::fixed_interarrival(spec.fixed_gap);
      break;
  }

  const double promote = spec.promotion_probability;
  config.policy_factory = [promote] {
    return std::make_unique<client::static_probability_promotion>(promote);
  };

  if (spec.faults.active()) {
    config.faults = spec.faults;
    // One expanded trace per spec (not per replication): every seed of
    // the sweep — and every shard of a fleet run — injects the same
    // global fault set, keyed off base_seed alone.
    config.preemption_schedule = fault::make_preemption_schedule(
        spec.faults, spec.duration, spec.base_seed);
  }
  return config;
}

namespace {

/// The one place a replication is materialized and run.  `record_raw`
/// keeps the per-request series and trace records (the figure benches'
/// mode); off, only the streaming digest accumulates (the fleet /
/// digest-sweep mode).  Identical simulation either way (gated by
/// test_golden_equivalence).
core::system_metrics run_one_replication(const scenario_spec& spec,
                                         const tasks::task_pool& pool,
                                         const replication_context& context,
                                         bool record_raw) {
  util::rng stream = context.stream();
  core::system_config config = make_system_config(spec, pool, stream);
  config.record_request_series = record_raw;
  config.sdn.retain_trace_records = record_raw;
  core::offloading_system system{std::move(config), pool};
  system.run(spec.duration);
  return system.metrics();
}

}  // namespace

core::system_metrics run_replication(const scenario_spec& spec,
                                     const tasks::task_pool& pool,
                                     const replication_context& context) {
  return run_one_replication(spec, pool, context, /*record_raw=*/true);
}

util::histogram make_latency_histogram() {
  // The core streaming digest's layout (250 ms bins to one minute), so
  // per-replication digests and system digests merge bin-for-bin.
  return core::default_latency_histogram();
}

replication_metrics::replication_metrics(std::size_t group_count)
    : latency{make_latency_histogram()},
      group_response(group_count),
      group_successes(group_count, 0),
      group_instances(group_count) {}

aggregate_metrics::aggregate_metrics(std::size_t group_count)
    : latency{make_latency_histogram()},
      group_response(group_count),
      group_successes(group_count, 0),
      group_instances(group_count) {}

replication_metrics digest_metrics(const core::system_metrics& metrics,
                                   std::size_t group_count,
                                   std::uint64_t seed) {
  replication_metrics digest{group_count};
  digest.seed = seed;
  digest.promotions = metrics.promotions;
  digest.demotions = metrics.demotions;
  digest.background_submitted = metrics.background_submitted;
  digest.total_cost_usd = metrics.total_cost_usd;
  if (metrics.digest.issued == 0 && !metrics.requests.empty()) {
    // Metrics assembled by hand (tests, imported series): derive the
    // aggregates from the raw request series, as digest_metrics always
    // did before the streaming digest existed.
    digest.requests = metrics.requests.size();
    for (const auto& request : metrics.requests) {
      if (!request.success) continue;
      ++digest.successes;
      digest.response.add(request.response_ms);
      digest.latency.add(request.response_ms);
      if (request.group < group_count) {
        digest.group_response[request.group].add(request.response_ms);
        ++digest.group_successes[request.group];
      }
    }
  } else {
    // The system streamed these aggregates on its response path, in the
    // same completion order the scan above would visit — the raw series
    // is not needed (and fleet-scale runs never record it).
    const auto& streamed = metrics.digest;
    digest.requests = streamed.issued;
    digest.successes = streamed.succeeded;
    digest.response = streamed.response;
    digest.latency = streamed.latency;
    const std::size_t groups =
        std::min(group_count, streamed.group_response.size());
    for (std::size_t g = 0; g < groups; ++g) {
      digest.group_response[g] = streamed.group_response[g];
      digest.group_successes[g] = streamed.group_successes[g];
    }
  }
  for (const auto& slot : metrics.slots) {
    if (slot.accuracy) {
      digest.mean_prediction_accuracy += *slot.accuracy;
      ++digest.scored_slots;
    }
    if (!slot.plan) continue;
    std::vector<std::size_t> per_group(group_count, 0);
    for (const auto& entry : slot.plan->entries) {
      if (entry.group < group_count) per_group[entry.group] += entry.count;
    }
    for (std::size_t g = 0; g < group_count; ++g) {
      digest.group_instances[g].add(static_cast<double>(per_group[g]));
    }
  }
  if (digest.scored_slots > 0) {
    digest.mean_prediction_accuracy /=
        static_cast<double>(digest.scored_slots);
  }
  return digest;
}

aggregate_metrics merge_replications(
    std::span<const replication_metrics> ordered) {
  const std::size_t groups =
      ordered.empty() ? 0 : ordered.front().group_response.size();
  aggregate_metrics aggregate{groups};
  for (const auto& r : ordered) {
    ++aggregate.replications;
    aggregate.requests += r.requests;
    aggregate.successes += r.successes;
    aggregate.promotions += r.promotions;
    aggregate.demotions += r.demotions;
    aggregate.background_submitted += r.background_submitted;
    aggregate.cost_usd.add(r.total_cost_usd);
    if (r.scored_slots > 0) aggregate.accuracy.add(r.mean_prediction_accuracy);
    aggregate.response.merge(r.response);
    aggregate.latency.merge(r.latency);
    // Whole-array merges: the histogram fold vectorizes over bins and the
    // batched Welford fold overlaps independent groups (util/simd.h,
    // util::merge_each) — per-element math is unchanged.
    util::merge_each(aggregate.group_response, r.group_response);
    util::merge_each(aggregate.group_instances, r.group_instances);
    for (std::size_t g = 0; g < groups; ++g) {
      aggregate.group_successes[g] += r.group_successes[g];
    }
  }
  return aggregate;
}

double aggregate_metrics::acceptance_rate() const noexcept {
  if (requests == 0) return 0.0;
  return static_cast<double>(successes) / static_cast<double>(requests);
}

std::uint64_t aggregate_metrics::fingerprint() const noexcept {
  fingerprint_state fnv;
  fnv.word(replications);
  fnv.word(requests);
  fnv.word(successes);
  fnv.word(promotions);
  fnv.word(demotions);
  fnv.word(background_submitted);
  fnv.stats(cost_usd);
  fnv.stats(accuracy);
  fnv.stats(response);
  fnv.word(latency.total());
  for (std::size_t b = 0; b < latency.bin_count(); ++b) {
    fnv.word(latency.count_in_bin(b));
  }
  for (std::size_t g = 0; g < group_response.size(); ++g) {
    fnv.stats(group_response[g]);
    fnv.word(group_successes[g]);
    fnv.stats(group_instances[g]);
  }
  return fnv.hash;
}

scenario_result run_scenario(const scenario_spec& spec,
                             const replication_plan& plan,
                             const tasks::task_pool& task_pool,
                             thread_pool& pool) {
  // A malformed spec fails the whole call, not every replication
  // individually: the mistake is in the input, not in any one seed.
  validate(spec, task_pool);
  const std::size_t groups = group_count_of(spec);
  // mca-lint: allow(det-wallclock) serial-vs-parallel wall timing for the
  // runner's speedup report; digests and fingerprints never read it.
  const auto start = std::chrono::steady_clock::now();
  auto outcome = run_replications(
      pool, plan, [&](const replication_context& context) {
        // Digest-only replications run lean: no raw request series, no
        // retained trace records — the streaming digest carries
        // everything the merge needs.
        return digest_metrics(
            run_one_replication(spec, task_pool, context,
                                /*record_raw=*/false),
            groups, context.seed);
      });
  // mca-lint: allow(det-wallclock) see above: advisory wall time only.
  const auto stop = std::chrono::steady_clock::now();

  scenario_result result;
  result.errors = std::move(outcome.errors);
  result.wall_seconds =
      std::chrono::duration<double>(stop - start).count();
  for (auto& slot : outcome.results) {
    if (slot.has_value()) {
      result.per_replication.push_back(std::move(*slot));
    }
  }
  result.aggregate = merge_replications(result.per_replication);
  return result;
}

std::vector<scenario_spec> builtin_scenarios() {
  // Durations are trimmed against the paper's 8 h so the whole suite
  // (serial + parallel legs) finishes in seconds; --replications and the
  // spec fields scale it back up to fleet size.
  scenario_spec fig9;
  fig9.name = "fig9_closed_loop";
  fig9.base_seed = 2017;
  fig9.duration = util::hours(2);

  scenario_spec fig10;
  fig10.name = "fig10_adaptive";
  fig10.base_seed = 1016;
  fig10.duration = util::hours(2);
  fig10.tasks = task_mix::random_pool;
  fig10.slot_length = util::minutes(30.0);
  fig10.background_requests_per_burst = 20;

  // Fleet scale: a larger population spread over four acceleration groups,
  // each provisioned from two EC2 tiers, so every slot boundary feeds the
  // bounded-variable ILP a multi-candidate, many-group allocation instead
  // of the three one-candidate groups of the paper scenarios.
  scenario_spec fleet;
  fleet.name = "fleet";
  fleet.base_seed = 64;
  fleet.user_count = 400;
  fleet.duration = util::hours(1.5);
  fleet.slot_length = util::minutes(20.0);
  fleet.max_total_instances = 96;
  fleet.groups = {
      {1, "t2.nano", 1, 4.0},      {1, "t2.small", 0, 18.0},
      {2, "t2.medium", 1, 12.0},   {2, "t2.large", 0, 26.0},
      {3, "m4.4xlarge", 1, 100.0}, {3, "m4.10xlarge", 0, 240.0},
      {4, "c4.8xlarge", 1, 220.0},
  };
  fleet.tasks = task_mix::random_pool;
  fleet.promotion_probability = 1.0 / 30.0;
  fleet.background_requests_per_burst = 10;
  fleet.background_burst_period = util::seconds(5.0);
  // Sharded by default when driven through fleet::run_fleet
  // (examples/fleet_demo); the account cap stays the fleet-wide 96.
  fleet.fleet_shards = 4;
  fleet.fleet_max_total_instances = 96;

  scenario_spec smoke;
  smoke.name = "smoke";
  smoke.base_seed = 7;
  smoke.user_count = 12;
  smoke.duration = util::minutes(40.0);
  smoke.slot_length = util::minutes(10.0);
  smoke.gaps = gap_model::exponential;
  smoke.arrival_rate_hz = 0.05;
  smoke.background_requests_per_burst = 4;
  smoke.background_burst_period = util::seconds(10.0);
  smoke.groups = {{1, "t2.nano", 1, 4.0}, {2, "t2.large", 1, 30.0}};

  return {fig9, fig10, fleet, smoke};
}

}  // namespace mca::exp
