#include "ilp/tableau.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace mca::ilp {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
/// Candidate-list size for Dantzig pricing: big enough that a refresh scan
/// amortizes over many pivots, small enough to stay in cache.
constexpr std::size_t kCandidateMax = 32;
/// Consecutive degenerate pivots before falling back to Bland's rule.
constexpr std::size_t kBlandAfter = 64;
/// Primal feasibility threshold for the dual simplex / phase-1 check.
constexpr double kFeasTol = 1e-7;

}  // namespace

dense_tableau::dense_tableau(const problem& p, double tol)
    : problem_{&p}, tol_{tol} {
  const std::size_t n = p.variable_count();
  num_structural_ = n;
  shift_.resize(n);
  upper_.resize(n);
  for (std::size_t j = 0; j < n; ++j) {
    const auto& v = p.variable(j);
    if (!std::isfinite(v.lower)) {
      // Free variables are not needed by any caller in this library; keeping
      // the tableau non-negative-only keeps phase 1 simple.
      throw std::invalid_argument{
          "solve_lp: variable lower bound must be finite"};
    }
    shift_[j] = v.lower;
    upper_[j] = v.upper;
  }
}

double dense_tableau::span(std::size_t col) const {
  return col < num_structural_ ? upper_[col] - shift_[col] : kInf;
}

void dense_tableau::build() {
  const problem& p = *problem_;
  const std::size_t n = num_structural_;

  // Only the true constraint rows: upper bounds live in the per-column
  // at-lower/at-upper state, never as rows.
  num_rows_ = p.constraint_count();

  // Shift-adjusted rhs and normalized (rhs >= 0) sense per constraint row.
  std::vector<double> adj_rhs(num_rows_);
  std::vector<relation> adj_rel(num_rows_);
  std::vector<char> flipped_row(num_rows_, 0);
  std::size_t slack = 0;
  std::size_t artificial = 0;
  for (std::size_t i = 0; i < num_rows_; ++i) {
    const auto& c = p.constraint(i);
    double r = c.rhs;
    for (const auto& t : c.terms) r -= t.coeff * shift_[t.var];
    relation rel = c.rel;
    if (r < 0) {
      r = -r;
      flipped_row[i] = 1;
      if (rel == relation::less_equal) {
        rel = relation::greater_equal;
      } else if (rel == relation::greater_equal) {
        rel = relation::less_equal;
      }
    }
    adj_rhs[i] = r;
    adj_rel[i] = rel;
    switch (rel) {
      case relation::less_equal: ++slack; break;
      case relation::greater_equal: ++slack; ++artificial; break;
      case relation::equal: ++artificial; break;
    }
  }

  first_artificial_ = n + slack;
  num_cols_ = first_artificial_ + artificial;
  stride_ = num_cols_;

  tab_.assign(num_rows_ * stride_, 0.0);
  rhs_.assign(num_rows_, 0.0);
  basis_.assign(num_rows_, 0);
  flipped_.assign(num_cols_, 0);  // every variable starts at its lower bound
  built_rhs_.resize(num_rows_);
  row_negated_.assign(flipped_row.begin(), flipped_row.end());
  row_anchor_.assign(num_rows_, npos);

  std::size_t next_slack = n;
  std::size_t next_artificial = first_artificial_;
  for (std::size_t i = 0; i < num_rows_; ++i) {
    const auto& c = p.constraint(i);
    double* row = row_ptr(i);
    const double sign = flipped_row[i] ? -1.0 : 1.0;
    for (const auto& t : c.terms) row[t.var] += sign * t.coeff;
    rhs_[i] = adj_rhs[i];
    built_rhs_[i] = c.rhs;
    switch (adj_rel[i]) {
      case relation::less_equal:
        row[next_slack] = 1.0;
        basis_[i] = next_slack++;
        break;
      case relation::greater_equal:
        row[next_slack++] = -1.0;
        row[next_artificial] = 1.0;
        basis_[i] = next_artificial++;
        break;
      case relation::equal:
        row[next_artificial] = 1.0;
        basis_[i] = next_artificial++;
        break;
    }
    // The initial basic column always carries a +1 in this row and nothing
    // elsewhere, so its column stays B⁻¹e_row through every later pivot
    // (slack/artificial columns have infinite span and are never flipped).
    row_anchor_[i] = basis_[i];
  }

  candidates_.clear();
  price_cursor_ = 0;
  degenerate_streak_ = 0;
  built_ = true;
  needs_rebuild_ = false;
  dual_ready_ = false;
}

void dense_tableau::pivot(std::size_t prow_idx, std::size_t pcol) {
  double* prow = row_ptr(prow_idx);
  const double inv = 1.0 / prow[pcol];
  for (std::size_t j = 0; j < num_cols_; ++j) prow[j] *= inv;
  prow[pcol] = 1.0;
  rhs_[prow_idx] *= inv;
  for (std::size_t i = 0; i < num_rows_; ++i) {
    if (i == prow_idx) continue;
    double* row = row_ptr(i);
    const double factor = row[pcol];
    if (std::abs(factor) < tol_) {
      row[pcol] = 0.0;
      continue;
    }
    for (std::size_t j = 0; j < num_cols_; ++j) row[j] -= factor * prow[j];
    row[pcol] = 0.0;
    rhs_[i] -= factor * rhs_[prow_idx];
  }
  basis_[prow_idx] = pcol;
}

void dense_tableau::flip_nonbasic(std::size_t col) {
  // Substituting z' = u - z negates the column and its reduced cost and
  // shifts every row's rhs by the column times the span.  Basic reduced
  // costs stay untouched, so dual feasibility survives the flip.
  const double u = span(col);
  for (std::size_t i = 0; i < num_rows_; ++i) {
    double& a = tab_[i * stride_ + col];
    if (a != 0.0) {
      rhs_[i] -= a * u;
      a = -a;
    }
  }
  cost_[col] = -cost_[col];
  flipped_[col] ^= 1;
}

void dense_tableau::flip_basic_row(std::size_t row) {
  // Row equation  z_b + sum a_j z_j = rhs  becomes, with w = u - z_b,
  //   w - sum a_j z_j = u - rhs;  the basic column stays the unit vector
  // and every reduced cost is unchanged (c_b and the row negate together).
  const std::size_t b = basis_[row];
  double* r = row_ptr(row);
  for (std::size_t j = 0; j < num_cols_; ++j) r[j] = -r[j];
  r[b] = 1.0;
  rhs_[row] = span(b) - rhs_[row];
  flipped_[b] ^= 1;
}

void dense_tableau::price_out_basis() {
  // Reduce the cost row so basic columns have zero reduced cost.
  for (std::size_t i = 0; i < num_rows_; ++i) {
    const double factor = cost_[basis_[i]];
    if (std::abs(factor) < tol_) continue;
    const double* row = row_ptr(i);
    for (std::size_t j = 0; j < num_cols_; ++j) cost_[j] -= factor * row[j];
  }
}

std::size_t dense_tableau::choose_entering(std::size_t limit) {
  if (degenerate_streak_ > kBlandAfter) {
    // Bland's rule: lowest-index improving column (with the lowest-index
    // tie-break in the ratio test this guarantees termination).
    for (std::size_t j = 0; j < limit; ++j) {
      if (cost_[j] < -tol_) return j;
    }
    return npos;
  }
  for (int pass = 0; pass < 2; ++pass) {
    // Dantzig over the candidate list, pruning stale entries in place.
    std::size_t best = npos;
    double best_cost = -tol_;
    std::size_t keep = 0;
    for (std::size_t idx = 0; idx < candidates_.size(); ++idx) {
      const std::size_t j = candidates_[idx];
      if (j >= limit || cost_[j] >= -tol_) continue;
      candidates_[keep++] = j;
      if (cost_[j] < best_cost) {
        best_cost = cost_[j];
        best = j;
      }
    }
    candidates_.resize(keep);
    if (best != npos) return best;
    if (pass == 1 || limit == 0) break;
    // Refill from a rotating cursor so no column region starves.
    if (price_cursor_ >= limit) price_cursor_ = 0;
    std::size_t j = price_cursor_;
    for (std::size_t scanned = 0; scanned < limit; ++scanned) {
      if (cost_[j] < -tol_) {
        candidates_.push_back(j);
        if (candidates_.size() >= kCandidateMax) {
          price_cursor_ = j + 1 == limit ? 0 : j + 1;
          break;
        }
      }
      ++j;
      if (j == limit) j = 0;
    }
    if (candidates_.empty()) break;
  }
  return npos;
}

solve_status dense_tableau::primal(std::size_t limit, std::size_t max_iters,
                                   std::size_t& used) {
  while (used < max_iters) {
    const std::size_t entering = choose_entering(limit);
    if (entering == npos) return solve_status::optimal;

    // Bounded ratio test.  Three ways the step can stop: a basic variable
    // drops to zero (classic), a basic variable climbs to its finite upper
    // bound (flip its row, then pivot), or the entering variable crosses
    // its own span first (bound flip, no pivot).  Ties between rows break
    // toward the lowest basis index (Bland-compatible); a tie with the
    // entering span prefers the cheaper bound flip.
    double best_step = span(entering);
    std::size_t leave_row = npos;
    bool leave_at_upper = false;
    for (std::size_t i = 0; i < num_rows_; ++i) {
      const double a = at(i, entering);
      double step;
      bool at_up;
      if (a > tol_) {
        step = rhs_[i] / a;
        at_up = false;
      } else if (a < -tol_) {
        const double u = span(basis_[i]);
        if (!std::isfinite(u)) continue;
        step = (u - rhs_[i]) / -a;
        at_up = true;
      } else {
        continue;
      }
      if (step < 0.0) step = 0.0;  // tolerance-level rhs overshoot
      if (step < best_step - tol_ ||
          (step < best_step + tol_ && leave_row != npos &&
           basis_[i] < basis_[leave_row])) {
        best_step = step;
        leave_row = i;
        leave_at_upper = at_up;
      }
    }

    if (leave_row == npos) {
      if (!std::isfinite(best_step)) return solve_status::unbounded;
      // The entering variable's own bound binds first: flip it across its
      // box.  Strictly improving whenever the span is positive, so flips
      // cannot cycle on their own.
      if (best_step <= tol_) {
        ++degenerate_streak_;
      } else {
        degenerate_streak_ = 0;
      }
      flip_nonbasic(entering);
      ++used;
      ++pivots_;
      continue;
    }

    if (best_step <= tol_) {
      ++degenerate_streak_;
    } else {
      degenerate_streak_ = 0;
    }
    if (leave_at_upper) flip_basic_row(leave_row);
    const double factor = cost_[entering];
    pivot(leave_row, entering);
    const double* prow = row_ptr(leave_row);
    for (std::size_t j = 0; j < num_cols_; ++j) cost_[j] -= factor * prow[j];
    ++used;
    ++pivots_;
  }
  return solve_status::iteration_limit;
}

solve_status dense_tableau::solve(const simplex_options& opts) {
  build();
  std::size_t used = 0;

  // Phase 1: minimize the sum of artificial variables.
  if (first_artificial_ < num_cols_) {
    cost_.assign(num_cols_, 0.0);
    for (std::size_t j = first_artificial_; j < num_cols_; ++j) cost_[j] = 1.0;
    price_out_basis();
    const solve_status s = primal(num_cols_, opts.max_iterations, used);
    if (s == solve_status::unbounded) {
      // Phase-1 objective is bounded below by 0; unboundedness is a bug.
      return solve_status::iteration_limit;
    }
    if (s == solve_status::iteration_limit || used >= opts.max_iterations) {
      return solve_status::iteration_limit;
    }
    double infeasibility = 0.0;
    for (std::size_t i = 0; i < num_rows_; ++i) {
      if (basis_[i] >= first_artificial_) infeasibility += rhs_[i];
    }
    if (infeasibility > kFeasTol) return solve_status::infeasible;
    // Drive any artificial still in the basis (at zero level) out.
    for (std::size_t i = 0; i < num_rows_; ++i) {
      if (basis_[i] < first_artificial_) continue;
      const double* row = row_ptr(i);
      for (std::size_t j = 0; j < first_artificial_; ++j) {
        if (std::abs(row[j]) > tol_) {
          pivot(i, j);
          break;
        }
      }
      // If the whole row is zero over real columns the row is redundant;
      // the artificial stays basic at level zero, which is harmless.
    }
  }

  // Phase 2: original objective.  Artificial columns are simply never
  // eligible to enter (the pricing limit stops at first_artificial_), so no
  // infinite-cost sentinel is needed.  Columns phase 1 left at their upper
  // bound are stored flipped, so their cost enters negated.
  cost_.assign(num_cols_, 0.0);
  for (std::size_t j = 0; j < num_structural_; ++j) {
    const double c = problem_->variable(j).cost;
    cost_[j] = flipped_[j] ? -c : c;
  }
  price_out_basis();
  candidates_.clear();
  degenerate_streak_ = 0;
  const solve_status s = primal(first_artificial_, opts.max_iterations, used);
  if (s == solve_status::optimal && used < opts.max_iterations) {
    dual_ready_ = true;
    return solve_status::optimal;
  }
  if (s == solve_status::unbounded) return solve_status::unbounded;
  return solve_status::iteration_limit;
}

void dense_tableau::tighten_lower(std::size_t var, double lo) {
  if (lo <= shift_[var]) return;
  const double delta = lo - shift_[var];
  shift_[var] = lo;
  if (!built_ || needs_rebuild_) {
    needs_rebuild_ = true;
    return;
  }
  // A flipped column measures distance from the upper bound, which a lower
  // tightening leaves untouched (an at-upper nonbasic stays put; a basic
  // one keeps the same upper - x value) — only the span bookkeeping above
  // changes.  An unflipped column is the classic substitution shift: the
  // original rhs moves by -delta * A_j, which in the current basis is
  // -delta times tableau column j (the unit vector when var is basic).
  if (flipped_[var]) return;
  for (std::size_t i = 0; i < num_rows_; ++i) {
    rhs_[i] -= delta * at(i, var);
  }
}

void dense_tableau::tighten_upper(std::size_t var, double hi) {
  if (hi >= upper_[var]) return;
  const double delta = upper_[var] - hi;
  upper_[var] = hi;
  if (!built_ || needs_rebuild_) {
    needs_rebuild_ = true;
    return;
  }
  // Mirror image of tighten_lower: only a flipped column (distance from
  // upper) feels the move.  A variable whose upper bound was infinite at
  // build time is necessarily unflipped, so its first finite bound is pure
  // span bookkeeping — no rebuild, and any resulting violation of the new
  // span is an ordinary dual-simplex repair.
  if (!flipped_[var]) return;
  for (std::size_t i = 0; i < num_rows_; ++i) {
    rhs_[i] -= delta * at(i, var);
  }
}

void dense_tableau::sync_constraint_rhs(std::size_t row) {
  if (!built_ || needs_rebuild_) return;  // build() reads the problem fresh
  const double now = problem_->constraint(row).rhs;
  const double delta = now - built_rhs_[row];
  if (delta == 0.0) return;
  built_rhs_[row] = now;
  // The build-space rhs of this row moved by ±delta (the build may have
  // sign-normalized the row); in the current basis that shifts the basic
  // values by B⁻¹e_row times the move, and B⁻¹e_row is exactly the current
  // tableau column of the row's original basic variable.
  const double d = row_negated_[row] ? -delta : delta;
  const std::size_t col = row_anchor_[row];
  for (std::size_t i = 0; i < num_rows_; ++i) {
    const double a = at(i, col);
    if (a != 0.0) rhs_[i] += d * a;
  }
}

void dense_tableau::tighten_by_reduced_costs(double slack) {
  if (!built_ || needs_rebuild_ || !dual_ready_ || slack < 0.0) return;
  for (std::size_t j = 0; j < num_structural_; ++j) {
    const double d = cost_[j];
    if (d <= tol_) continue;  // basic (== 0) or no usable reduced cost
    const double u = span(j);
    double reach = slack / d;
    if (problem_->variable(j).is_integer) {
      // z moves in unit steps only when the bound it is anchored at is
      // itself integral (x integer, anchor fractional => z fractional), so
      // the stronger floored reach applies just then; otherwise keep the
      // continuous reach, which is always valid.
      const double anchor = flipped_[j] ? upper_[j] : shift_[j];
      if (std::abs(anchor - std::round(anchor)) <= 1e-9) {
        reach = std::floor(reach + 1e-9);
      }
    }
    if (reach >= u - tol_) continue;
    // The variable sits at z = 0 (it is nonbasic: positive reduced cost at
    // an optimum implies nonbasic), so pulling the far bound to within
    // `reach` never moves the current vertex and needs no rhs update.
    if (flipped_[j]) {
      tighten_lower(j, upper_[j] - reach);
    } else {
      tighten_upper(j, shift_[j] + reach);
    }
  }
}

solve_status dense_tableau::dual(const simplex_options& opts) {
  std::size_t used = 0;
  while (used < opts.max_iterations) {
    // Most-violated basic variable: below zero, or above a finite upper
    // bound (re-expressed as a below-zero violation by flipping the row
    // before the ratio test).
    std::size_t leaving = npos;
    double worst = kFeasTol;
    bool above_upper = false;
    for (std::size_t i = 0; i < num_rows_; ++i) {
      double violation = -rhs_[i];
      bool up = false;
      const double u = span(basis_[i]);
      if (std::isfinite(u) && rhs_[i] - u > violation) {
        violation = rhs_[i] - u;
        up = true;
      }
      if (violation > worst) {
        worst = violation;
        leaving = i;
        above_upper = up;
      }
    }
    if (leaving == npos) return solve_status::optimal;  // primal feasible again
    if (above_upper) flip_basic_row(leaving);  // now rhs_[leaving] < 0

    const double* lrow = row_ptr(leaving);
    std::size_t entering = npos;
    double best_ratio = kInf;
    for (std::size_t j = 0; j < first_artificial_; ++j) {
      const double a = lrow[j];
      if (a >= -tol_) continue;
      const double ratio = std::max(cost_[j], 0.0) / -a;
      if (ratio < best_ratio - tol_ ||
          (ratio < best_ratio + tol_ && (entering == npos || j < entering))) {
        best_ratio = ratio;
        entering = j;
      }
    }
    if (entering == npos) return solve_status::infeasible;  // dual ray

    const double factor = cost_[entering];
    pivot(leaving, entering);
    const double* prow = row_ptr(leaving);
    for (std::size_t j = 0; j < num_cols_; ++j) cost_[j] -= factor * prow[j];
    ++used;
    ++pivots_;
  }
  return solve_status::iteration_limit;
}

solve_status dense_tableau::resolve(const simplex_options& opts) {
  if (needs_rebuild_ || !dual_ready_) return solve(opts);
  const solve_status s = dual(opts);
  if (s == solve_status::iteration_limit) {
    // Dual got stuck (degenerate cycling); a fresh primal solve from the
    // recorded bounds is always a valid fallback.
    return solve(opts);
  }
  return s;
}

void dense_tableau::extract(solution& out) const {
  // First pass: tableau-space value z_j (distance from the bound the
  // column is anchored at), clamped into [0, span].
  out.values.assign(num_structural_, 0.0);
  for (std::size_t i = 0; i < num_rows_; ++i) {
    if (basis_[i] < num_structural_) out.values[basis_[i]] = rhs_[i];
  }
  for (std::size_t j = 0; j < num_structural_; ++j) {
    const double u = upper_[j] - shift_[j];
    double z = out.values[j];
    if (z < 0.0) z = 0.0;
    if (z > u) z = u;
    out.values[j] = shift_[j] + (flipped_[j] ? u - z : z);
  }
  out.objective = problem_->objective_value(out.values);
  out.status = solve_status::optimal;
}

}  // namespace mca::ilp
