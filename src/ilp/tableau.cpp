#include "ilp/tableau.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace mca::ilp {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
/// Candidate-list size for Dantzig pricing: big enough that a refresh scan
/// amortizes over many pivots, small enough to stay in cache.
constexpr std::size_t kCandidateMax = 32;
/// Consecutive degenerate pivots before falling back to Bland's rule.
constexpr std::size_t kBlandAfter = 64;
/// Primal feasibility threshold for the dual simplex / phase-1 check.
constexpr double kFeasTol = 1e-7;

}  // namespace

dense_tableau::dense_tableau(const problem& p, double tol)
    : problem_{&p}, tol_{tol} {
  const std::size_t n = p.variable_count();
  num_structural_ = n;
  shift_.resize(n);
  upper_.resize(n);
  for (std::size_t j = 0; j < n; ++j) {
    const auto& v = p.variable(j);
    if (!std::isfinite(v.lower)) {
      // Free variables are not needed by any caller in this library; keeping
      // the tableau non-negative-only keeps phase 1 simple.
      throw std::invalid_argument{
          "solve_lp: variable lower bound must be finite"};
    }
    shift_[j] = v.lower;
    upper_[j] = v.upper;
  }
}

void dense_tableau::build() {
  const problem& p = *problem_;
  const std::size_t n = num_structural_;

  std::size_t bound_rows = 0;
  for (std::size_t j = 0; j < n; ++j) {
    if (std::isfinite(upper_[j])) ++bound_rows;
  }
  const std::size_t constraint_rows = p.constraint_count();
  num_rows_ = constraint_rows + bound_rows;

  // Shift-adjusted rhs and normalized (rhs >= 0) sense per constraint row.
  std::vector<double> adj_rhs(constraint_rows);
  std::vector<relation> adj_rel(constraint_rows);
  std::vector<char> flipped(constraint_rows, 0);
  std::size_t slack = bound_rows;  // every bound row is <= with a slack
  std::size_t artificial = 0;
  for (std::size_t i = 0; i < constraint_rows; ++i) {
    const auto& c = p.constraint(i);
    double r = c.rhs;
    for (const auto& t : c.terms) r -= t.coeff * shift_[t.var];
    relation rel = c.rel;
    if (r < 0) {
      r = -r;
      flipped[i] = 1;
      if (rel == relation::less_equal) {
        rel = relation::greater_equal;
      } else if (rel == relation::greater_equal) {
        rel = relation::less_equal;
      }
    }
    adj_rhs[i] = r;
    adj_rel[i] = rel;
    switch (rel) {
      case relation::less_equal: ++slack; break;
      case relation::greater_equal: ++slack; ++artificial; break;
      case relation::equal: ++artificial; break;
    }
  }

  first_artificial_ = n + slack;
  num_cols_ = first_artificial_ + artificial;
  stride_ = num_cols_;

  tab_.assign(num_rows_ * stride_, 0.0);
  rhs_.assign(num_rows_, 0.0);
  basis_.assign(num_rows_, 0);
  upper_row_.assign(n, npos);
  upper_slack_.assign(n, npos);

  std::size_t next_slack = n;
  std::size_t next_artificial = first_artificial_;
  for (std::size_t i = 0; i < constraint_rows; ++i) {
    const auto& c = p.constraint(i);
    double* row = row_ptr(i);
    const double sign = flipped[i] ? -1.0 : 1.0;
    for (const auto& t : c.terms) row[t.var] += sign * t.coeff;
    rhs_[i] = adj_rhs[i];
    switch (adj_rel[i]) {
      case relation::less_equal:
        row[next_slack] = 1.0;
        basis_[i] = next_slack++;
        break;
      case relation::greater_equal:
        row[next_slack++] = -1.0;
        row[next_artificial] = 1.0;
        basis_[i] = next_artificial++;
        break;
      case relation::equal:
        row[next_artificial] = 1.0;
        basis_[i] = next_artificial++;
        break;
    }
  }
  std::size_t r = constraint_rows;
  for (std::size_t j = 0; j < n; ++j) {
    if (!std::isfinite(upper_[j])) continue;
    double* row = row_ptr(r);
    row[j] = 1.0;
    rhs_[r] = upper_[j] - shift_[j];
    row[next_slack] = 1.0;
    basis_[r] = next_slack;
    upper_row_[j] = r;
    upper_slack_[j] = next_slack;
    ++next_slack;
    ++r;
  }

  candidates_.clear();
  price_cursor_ = 0;
  degenerate_streak_ = 0;
  built_ = true;
  needs_rebuild_ = false;
  dual_ready_ = false;
}

void dense_tableau::pivot(std::size_t prow_idx, std::size_t pcol) {
  double* prow = row_ptr(prow_idx);
  const double inv = 1.0 / prow[pcol];
  for (std::size_t j = 0; j < num_cols_; ++j) prow[j] *= inv;
  prow[pcol] = 1.0;
  rhs_[prow_idx] *= inv;
  for (std::size_t i = 0; i < num_rows_; ++i) {
    if (i == prow_idx) continue;
    double* row = row_ptr(i);
    const double factor = row[pcol];
    if (std::abs(factor) < tol_) {
      row[pcol] = 0.0;
      continue;
    }
    for (std::size_t j = 0; j < num_cols_; ++j) row[j] -= factor * prow[j];
    row[pcol] = 0.0;
    rhs_[i] -= factor * rhs_[prow_idx];
  }
  basis_[prow_idx] = pcol;
}

void dense_tableau::price_out_basis() {
  // Reduce the cost row so basic columns have zero reduced cost.
  for (std::size_t i = 0; i < num_rows_; ++i) {
    const double factor = cost_[basis_[i]];
    if (std::abs(factor) < tol_) continue;
    const double* row = row_ptr(i);
    for (std::size_t j = 0; j < num_cols_; ++j) cost_[j] -= factor * row[j];
  }
}

std::size_t dense_tableau::choose_entering(std::size_t limit) {
  if (degenerate_streak_ > kBlandAfter) {
    // Bland's rule: lowest-index improving column (with the lowest-index
    // tie-break in choose_leaving this guarantees termination).
    for (std::size_t j = 0; j < limit; ++j) {
      if (cost_[j] < -tol_) return j;
    }
    return npos;
  }
  for (int pass = 0; pass < 2; ++pass) {
    // Dantzig over the candidate list, pruning stale entries in place.
    std::size_t best = npos;
    double best_cost = -tol_;
    std::size_t keep = 0;
    for (std::size_t idx = 0; idx < candidates_.size(); ++idx) {
      const std::size_t j = candidates_[idx];
      if (j >= limit || cost_[j] >= -tol_) continue;
      candidates_[keep++] = j;
      if (cost_[j] < best_cost) {
        best_cost = cost_[j];
        best = j;
      }
    }
    candidates_.resize(keep);
    if (best != npos) return best;
    if (pass == 1 || limit == 0) break;
    // Refill from a rotating cursor so no column region starves.
    if (price_cursor_ >= limit) price_cursor_ = 0;
    std::size_t j = price_cursor_;
    for (std::size_t scanned = 0; scanned < limit; ++scanned) {
      if (cost_[j] < -tol_) {
        candidates_.push_back(j);
        if (candidates_.size() >= kCandidateMax) {
          price_cursor_ = j + 1 == limit ? 0 : j + 1;
          break;
        }
      }
      ++j;
      if (j == limit) j = 0;
    }
    if (candidates_.empty()) break;
  }
  return npos;
}

std::size_t dense_tableau::choose_leaving(std::size_t entering) const {
  std::size_t leaving = npos;
  double best_ratio = kInf;
  for (std::size_t i = 0; i < num_rows_; ++i) {
    const double a = at(i, entering);
    if (a <= tol_) continue;
    const double ratio = rhs_[i] / a;
    if (ratio < best_ratio - tol_ ||
        (ratio < best_ratio + tol_ &&
         (leaving == npos || basis_[i] < basis_[leaving]))) {
      best_ratio = ratio;
      leaving = i;
    }
  }
  return leaving;
}

solve_status dense_tableau::primal(std::size_t limit, std::size_t max_iters,
                                   std::size_t& used) {
  while (used < max_iters) {
    const std::size_t entering = choose_entering(limit);
    if (entering == npos) return solve_status::optimal;
    const std::size_t leaving = choose_leaving(entering);
    if (leaving == npos) return solve_status::unbounded;
    if (rhs_[leaving] <= tol_) {
      ++degenerate_streak_;
    } else {
      degenerate_streak_ = 0;
    }
    const double factor = cost_[entering];
    pivot(leaving, entering);
    const double* prow = row_ptr(leaving);
    for (std::size_t j = 0; j < num_cols_; ++j) cost_[j] -= factor * prow[j];
    ++used;
    ++pivots_;
  }
  return solve_status::iteration_limit;
}

solve_status dense_tableau::solve(const simplex_options& opts) {
  build();
  std::size_t used = 0;

  // Phase 1: minimize the sum of artificial variables.
  if (first_artificial_ < num_cols_) {
    cost_.assign(num_cols_, 0.0);
    for (std::size_t j = first_artificial_; j < num_cols_; ++j) cost_[j] = 1.0;
    price_out_basis();
    const solve_status s = primal(num_cols_, opts.max_iterations, used);
    if (s == solve_status::unbounded) {
      // Phase-1 objective is bounded below by 0; unboundedness is a bug.
      return solve_status::iteration_limit;
    }
    if (s == solve_status::iteration_limit || used >= opts.max_iterations) {
      return solve_status::iteration_limit;
    }
    double infeasibility = 0.0;
    for (std::size_t i = 0; i < num_rows_; ++i) {
      if (basis_[i] >= first_artificial_) infeasibility += rhs_[i];
    }
    if (infeasibility > kFeasTol) return solve_status::infeasible;
    // Drive any artificial still in the basis (at zero level) out.
    for (std::size_t i = 0; i < num_rows_; ++i) {
      if (basis_[i] < first_artificial_) continue;
      const double* row = row_ptr(i);
      for (std::size_t j = 0; j < first_artificial_; ++j) {
        if (std::abs(row[j]) > tol_) {
          pivot(i, j);
          break;
        }
      }
      // If the whole row is zero over real columns the row is redundant;
      // the artificial stays basic at level zero, which is harmless.
    }
  }

  // Phase 2: original objective.  Artificial columns are simply never
  // eligible to enter (the pricing limit stops at first_artificial_), so no
  // infinite-cost sentinel is needed.
  cost_.assign(num_cols_, 0.0);
  for (std::size_t j = 0; j < num_structural_; ++j) {
    cost_[j] = problem_->variable(j).cost;
  }
  price_out_basis();
  candidates_.clear();
  degenerate_streak_ = 0;
  const solve_status s = primal(first_artificial_, opts.max_iterations, used);
  if (s == solve_status::optimal && used < opts.max_iterations) {
    dual_ready_ = true;
    return solve_status::optimal;
  }
  if (s == solve_status::unbounded) return solve_status::unbounded;
  return solve_status::iteration_limit;
}

void dense_tableau::tighten_lower(std::size_t var, double lo) {
  if (lo <= shift_[var]) return;
  const double delta = lo - shift_[var];
  shift_[var] = lo;
  if (!built_ || needs_rebuild_) {
    needs_rebuild_ = true;
    return;
  }
  // Substituting y = x - lo' shifts the original rhs by -delta * A_j; in
  // the current basis that is -delta times tableau column j.
  for (std::size_t i = 0; i < num_rows_; ++i) {
    rhs_[i] -= delta * at(i, var);
  }
}

void dense_tableau::tighten_upper(std::size_t var, double hi) {
  if (hi >= upper_[var]) return;
  const double delta = upper_[var] - hi;
  upper_[var] = hi;
  if (!built_ || needs_rebuild_ || upper_row_[var] == npos) {
    // The variable had no bound row at build time (infinite upper); the
    // next resolve() rebuilds and materializes one.
    needs_rebuild_ = true;
    return;
  }
  // Only the bound row's original rhs changes; B^-1 applied to that unit
  // change is exactly the tableau column of the row's slack.
  const std::size_t s = upper_slack_[var];
  for (std::size_t i = 0; i < num_rows_; ++i) {
    rhs_[i] -= delta * at(i, s);
  }
}

solve_status dense_tableau::dual(const simplex_options& opts) {
  std::size_t used = 0;
  while (used < opts.max_iterations) {
    std::size_t leaving = npos;
    double most_negative = -kFeasTol;
    for (std::size_t i = 0; i < num_rows_; ++i) {
      if (rhs_[i] < most_negative) {
        most_negative = rhs_[i];
        leaving = i;
      }
    }
    if (leaving == npos) return solve_status::optimal;  // primal feasible again

    const double* lrow = row_ptr(leaving);
    std::size_t entering = npos;
    double best_ratio = kInf;
    for (std::size_t j = 0; j < first_artificial_; ++j) {
      const double a = lrow[j];
      if (a >= -tol_) continue;
      const double ratio = std::max(cost_[j], 0.0) / -a;
      if (ratio < best_ratio - tol_ ||
          (ratio < best_ratio + tol_ && (entering == npos || j < entering))) {
        best_ratio = ratio;
        entering = j;
      }
    }
    if (entering == npos) return solve_status::infeasible;  // dual ray

    const double factor = cost_[entering];
    pivot(leaving, entering);
    const double* prow = row_ptr(leaving);
    for (std::size_t j = 0; j < num_cols_; ++j) cost_[j] -= factor * prow[j];
    ++used;
    ++pivots_;
  }
  return solve_status::iteration_limit;
}

solve_status dense_tableau::resolve(const simplex_options& opts) {
  if (needs_rebuild_ || !dual_ready_) return solve(opts);
  const solve_status s = dual(opts);
  if (s == solve_status::iteration_limit) {
    // Dual got stuck (degenerate cycling); a fresh primal solve from the
    // recorded bounds is always a valid fallback.
    return solve(opts);
  }
  return s;
}

void dense_tableau::extract(solution& out) const {
  out.values.assign(num_structural_, 0.0);
  for (std::size_t i = 0; i < num_rows_; ++i) {
    if (basis_[i] < num_structural_) out.values[basis_[i]] = rhs_[i];
  }
  for (std::size_t j = 0; j < num_structural_; ++j) {
    out.values[j] += shift_[j];
  }
  out.objective = problem_->objective_value(out.values);
  out.status = solve_status::optimal;
}

}  // namespace mca::ilp
