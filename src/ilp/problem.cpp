#include "ilp/problem.h"

#include <cmath>
#include <stdexcept>

namespace mca::ilp {

std::size_t problem::add_variable(double cost, double lower, double upper,
                                  std::string name) {
  if (lower > upper) throw std::invalid_argument{"add_variable: lower > upper"};
  variables_.push_back({cost, lower, upper, false, std::move(name)});
  return variables_.size() - 1;
}

std::size_t problem::add_integer_variable(double cost, double lower,
                                          double upper, std::string name) {
  const std::size_t i = add_variable(cost, lower, upper, std::move(name));
  variables_[i].is_integer = true;
  return i;
}

void problem::add_constraint(std::vector<linear_term> terms, relation rel,
                             double rhs, std::string name) {
  if (terms.empty()) throw std::invalid_argument{"add_constraint: empty row"};
  for (const auto& t : terms) {
    if (t.var >= variables_.size()) {
      throw std::out_of_range{"add_constraint: unknown variable"};
    }
  }
  constraints_.push_back({std::move(terms), rel, rhs, std::move(name)});
}

void problem::set_bounds(std::size_t var, double lower, double upper) {
  if (lower > upper) throw std::invalid_argument{"set_bounds: empty box"};
  auto& v = variables_.at(var);
  v.lower = lower;
  v.upper = upper;
}

void problem::set_constraint_rhs(std::size_t i, double rhs) {
  constraints_.at(i).rhs = rhs;
}

bool problem::has_integer_variables() const noexcept {
  for (const auto& v : variables_) {
    if (v.is_integer) return true;
  }
  return false;
}

double problem::objective_value(const std::vector<double>& x) const {
  double total = 0.0;
  for (std::size_t i = 0; i < variables_.size() && i < x.size(); ++i) {
    total += variables_[i].cost * x[i];
  }
  return total;
}

bool problem::is_feasible(const std::vector<double>& x, double tol) const {
  if (x.size() != variables_.size()) return false;
  for (std::size_t i = 0; i < variables_.size(); ++i) {
    if (x[i] < variables_[i].lower - tol) return false;
    if (x[i] > variables_[i].upper + tol) return false;
    if (variables_[i].is_integer &&
        std::abs(x[i] - std::round(x[i])) > tol) {
      return false;
    }
  }
  for (const auto& row : constraints_) {
    double lhs = 0.0;
    for (const auto& t : row.terms) lhs += t.coeff * x[t.var];
    switch (row.rel) {
      case relation::less_equal:
        if (lhs > row.rhs + tol) return false;
        break;
      case relation::greater_equal:
        if (lhs < row.rhs - tol) return false;
        break;
      case relation::equal:
        if (std::abs(lhs - row.rhs) > tol) return false;
        break;
    }
  }
  return true;
}

const char* to_string(solve_status s) noexcept {
  switch (s) {
    case solve_status::optimal: return "optimal";
    case solve_status::infeasible: return "infeasible";
    case solve_status::unbounded: return "unbounded";
    case solve_status::iteration_limit: return "iteration_limit";
  }
  return "unknown";
}

}  // namespace mca::ilp
