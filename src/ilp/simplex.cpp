#include "ilp/simplex.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <vector>

namespace mca::ilp {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Dense tableau in equality form: rows_ x (num_cols_ structural+slack+
/// artificial columns), rhs kept separately, with an explicit basis.
class tableau {
 public:
  tableau(const problem& p, double tol) : tol_{tol} { build(p); }

  solution run(const problem& p, const simplex_options& opts);

 private:
  struct row_form {
    std::vector<double> coeffs;  // over shifted structural variables
    relation rel;
    double rhs;
  };

  void build(const problem& p);
  bool pivot_until_optimal(std::vector<double>& cost, double& objective,
                           std::size_t max_iters, std::size_t& used);
  void pivot(std::size_t row, std::size_t col);
  void price_out_basis(std::vector<double>& cost, double& objective) const;

  double tol_;
  std::size_t num_structural_ = 0;  // shifted structural variables
  std::size_t num_cols_ = 0;        // + slack/surplus + artificial
  std::size_t first_artificial_ = 0;
  std::vector<std::vector<double>> rows_;
  std::vector<double> rhs_;
  std::vector<std::size_t> basis_;
  std::vector<double> shift_;       // lower bound of each structural variable
  double shift_cost_ = 0.0;         // objective constant from the shift
  std::size_t iterations_ = 0;
};

void tableau::build(const problem& p) {
  const std::size_t n = p.variable_count();
  num_structural_ = n;
  shift_.resize(n);
  for (std::size_t j = 0; j < n; ++j) {
    const auto& v = p.variable(j);
    if (!std::isfinite(v.lower)) {
      // Free variables are not needed by any caller in this library; keeping
      // the tableau non-negative-only keeps phase 1 simple.
      throw std::invalid_argument{"solve_lp: variable lower bound must be finite"};
    }
    shift_[j] = v.lower;
    shift_cost_ += v.cost * v.lower;
  }

  // Collect rows: user constraints with rhs adjusted by the shift, then one
  // row per finite upper bound (y_j <= upper - lower).
  std::vector<row_form> forms;
  forms.reserve(p.constraint_count() + n);
  for (std::size_t i = 0; i < p.constraint_count(); ++i) {
    const auto& c = p.constraint(i);
    row_form f;
    f.coeffs.assign(n, 0.0);
    f.rhs = c.rhs;
    f.rel = c.rel;
    for (const auto& t : c.terms) {
      f.coeffs[t.var] += t.coeff;
      f.rhs -= t.coeff * shift_[t.var];
    }
    forms.push_back(std::move(f));
  }
  for (std::size_t j = 0; j < n; ++j) {
    const auto& v = p.variable(j);
    if (!std::isfinite(v.upper)) continue;
    row_form f;
    f.coeffs.assign(n, 0.0);
    f.coeffs[j] = 1.0;
    f.rel = relation::less_equal;
    f.rhs = v.upper - v.lower;
    forms.push_back(std::move(f));
  }

  // Normalize rhs >= 0.
  for (auto& f : forms) {
    if (f.rhs < 0) {
      for (auto& c : f.coeffs) c = -c;
      f.rhs = -f.rhs;
      if (f.rel == relation::less_equal) {
        f.rel = relation::greater_equal;
      } else if (f.rel == relation::greater_equal) {
        f.rel = relation::less_equal;
      }
    }
  }

  // Count auxiliary columns: slack (<=), surplus+artificial (>=),
  // artificial (=).
  std::size_t slack = 0;
  std::size_t artificial = 0;
  for (const auto& f : forms) {
    switch (f.rel) {
      case relation::less_equal: ++slack; break;
      case relation::greater_equal: ++slack; ++artificial; break;
      case relation::equal: ++artificial; break;
    }
  }
  first_artificial_ = n + slack;
  num_cols_ = first_artificial_ + artificial;

  rows_.assign(forms.size(), std::vector<double>(num_cols_, 0.0));
  rhs_.resize(forms.size());
  basis_.resize(forms.size());

  std::size_t next_slack = n;
  std::size_t next_artificial = first_artificial_;
  for (std::size_t i = 0; i < forms.size(); ++i) {
    const auto& f = forms[i];
    std::copy(f.coeffs.begin(), f.coeffs.end(), rows_[i].begin());
    rhs_[i] = f.rhs;
    switch (f.rel) {
      case relation::less_equal:
        rows_[i][next_slack] = 1.0;
        basis_[i] = next_slack++;
        break;
      case relation::greater_equal:
        rows_[i][next_slack++] = -1.0;
        rows_[i][next_artificial] = 1.0;
        basis_[i] = next_artificial++;
        break;
      case relation::equal:
        rows_[i][next_artificial] = 1.0;
        basis_[i] = next_artificial++;
        break;
    }
  }
}

void tableau::pivot(std::size_t prow, std::size_t pcol) {
  auto& pivot_row = rows_[prow];
  const double pv = pivot_row[pcol];
  for (auto& c : pivot_row) c /= pv;
  rhs_[prow] /= pv;
  for (std::size_t i = 0; i < rows_.size(); ++i) {
    if (i == prow) continue;
    const double factor = rows_[i][pcol];
    if (std::abs(factor) < tol_) continue;
    for (std::size_t j = 0; j < num_cols_; ++j) {
      rows_[i][j] -= factor * pivot_row[j];
    }
    rhs_[i] -= factor * rhs_[prow];
  }
  basis_[prow] = pcol;
}

void tableau::price_out_basis(std::vector<double>& cost,
                              double& objective) const {
  // Reduce the cost row so basic columns have zero reduced cost.
  for (std::size_t i = 0; i < rows_.size(); ++i) {
    const double factor = cost[basis_[i]];
    if (std::abs(factor) < tol_) continue;
    for (std::size_t j = 0; j < num_cols_; ++j) {
      cost[j] -= factor * rows_[i][j];
    }
    objective -= factor * rhs_[i];
  }
}

bool tableau::pivot_until_optimal(std::vector<double>& cost, double& objective,
                                  std::size_t max_iters, std::size_t& used) {
  // Bland's rule: entering = lowest-index column with negative reduced cost;
  // leaving = lowest-index basic variable among min-ratio rows.  Guarantees
  // termination.  Returns false on unboundedness.
  while (used < max_iters) {
    std::size_t entering = num_cols_;
    for (std::size_t j = 0; j < num_cols_; ++j) {
      if (cost[j] < -tol_) {
        entering = j;
        break;
      }
    }
    if (entering == num_cols_) return true;  // optimal

    std::size_t leaving = rows_.size();
    double best_ratio = kInf;
    for (std::size_t i = 0; i < rows_.size(); ++i) {
      const double a = rows_[i][entering];
      if (a <= tol_) continue;
      const double ratio = rhs_[i] / a;
      if (ratio < best_ratio - tol_ ||
          (ratio < best_ratio + tol_ &&
           (leaving == rows_.size() || basis_[i] < basis_[leaving]))) {
        best_ratio = ratio;
        leaving = i;
      }
    }
    if (leaving == rows_.size()) return false;  // unbounded

    const double factor = cost[entering];
    pivot(leaving, entering);
    // Update the cost row with the new pivot row.
    for (std::size_t j = 0; j < num_cols_; ++j) {
      cost[j] -= factor * rows_[leaving][j];
    }
    objective -= factor * rhs_[leaving];
    ++used;
  }
  return true;  // hit iteration budget; caller checks `used`
}

solution tableau::run(const problem& p, const simplex_options& opts) {
  solution result;
  std::size_t used = 0;

  // Phase 1: minimize the sum of artificial variables.
  if (first_artificial_ < num_cols_) {
    std::vector<double> cost(num_cols_, 0.0);
    for (std::size_t j = first_artificial_; j < num_cols_; ++j) cost[j] = 1.0;
    double phase1_obj = 0.0;
    price_out_basis(cost, phase1_obj);
    if (!pivot_until_optimal(cost, phase1_obj, opts.max_iterations, used)) {
      // Phase-1 objective is bounded below by 0; unboundedness is a bug.
      result.status = solve_status::iteration_limit;
      return result;
    }
    if (used >= opts.max_iterations) {
      result.status = solve_status::iteration_limit;
      return result;
    }
    if (-phase1_obj > 1e-7) {  // objective row tracks -value
      result.status = solve_status::infeasible;
      return result;
    }
    // Drive any artificial still in the basis (at zero level) out.
    for (std::size_t i = 0; i < rows_.size(); ++i) {
      if (basis_[i] < first_artificial_) continue;
      std::size_t replacement = first_artificial_;
      for (std::size_t j = 0; j < first_artificial_; ++j) {
        if (std::abs(rows_[i][j]) > tol_) {
          replacement = j;
          break;
        }
      }
      if (replacement < first_artificial_) {
        pivot(i, replacement);
      }
      // If the whole row is zero over real columns the row is redundant;
      // the artificial stays basic at level zero, which is harmless.
    }
  }

  // Phase 2: original objective over structural columns.
  std::vector<double> cost(num_cols_, 0.0);
  for (std::size_t j = 0; j < num_structural_; ++j) cost[j] = p.variable(j).cost;
  // Forbid artificials from re-entering.
  for (std::size_t j = first_artificial_; j < num_cols_; ++j) cost[j] = kInf;
  double objective = 0.0;
  price_out_basis(cost, objective);
  // price_out_basis may have produced inf-inf on artificial columns; they
  // are never eligible to enter, so clamp any NaN to +inf.
  for (std::size_t j = first_artificial_; j < num_cols_; ++j) {
    if (std::isnan(cost[j])) cost[j] = kInf;
    cost[j] = std::max(cost[j], 0.0);
  }
  if (!pivot_until_optimal(cost, objective, opts.max_iterations, used)) {
    result.status = solve_status::unbounded;
    return result;
  }
  if (used >= opts.max_iterations) {
    result.status = solve_status::iteration_limit;
    return result;
  }

  result.status = solve_status::optimal;
  result.values.assign(p.variable_count(), 0.0);
  for (std::size_t i = 0; i < rows_.size(); ++i) {
    if (basis_[i] < num_structural_) {
      result.values[basis_[i]] = rhs_[i];
    }
  }
  for (std::size_t j = 0; j < p.variable_count(); ++j) {
    result.values[j] += shift_[j];
  }
  result.objective = p.objective_value(result.values);
  return result;
}

}  // namespace

solution solve_lp(const problem& p, const simplex_options& opts) {
  if (p.variable_count() == 0) {
    throw std::invalid_argument{"solve_lp: problem has no variables"};
  }
  tableau t{p, opts.tolerance};
  return t.run(p, opts);
}

}  // namespace mca::ilp
