#include "ilp/simplex.h"

#include <stdexcept>

#include "ilp/tableau.h"

namespace mca::ilp {

solution solve_lp(const problem& p, const simplex_options& opts) {
  if (p.variable_count() == 0) {
    throw std::invalid_argument{"solve_lp: problem has no variables"};
  }
  dense_tableau t{p, opts.tolerance};
  solution result;
  result.status = t.solve(opts);
  if (result.status == solve_status::optimal) t.extract(result);
  result.iterations = t.pivots();
  return result;
}

}  // namespace mca::ilp
