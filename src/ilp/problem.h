// Linear / integer-linear program model.
//
// The resource allocator (§IV-C of the paper) builds its cost-minimization
// model through this interface; `solve_lp` (simplex.h) and `solve_ilp`
// (branch_bound.h) consume it.  Minimization form throughout:
//
//   min  c·x   s.t.  a_i·x {<=,>=,=} b_i ,  lo <= x <= hi ,
//
// with any subset of variables restricted to integers.
#pragma once

#include <cstddef>
#include <limits>
#include <string>
#include <vector>

namespace mca::ilp {

/// Constraint sense.
enum class relation { less_equal, greater_equal, equal };

/// One (variable, coefficient) entry of a constraint row.
struct linear_term {
  std::size_t var = 0;
  double coeff = 0.0;
};

/// A linear constraint  sum(terms) <relation> rhs.
struct constraint_def {
  std::vector<linear_term> terms;
  relation rel = relation::less_equal;
  double rhs = 0.0;
  std::string name;
};

/// A decision variable with box bounds and optional integrality.
struct variable_def {
  double cost = 0.0;
  double lower = 0.0;
  double upper = std::numeric_limits<double>::infinity();
  bool is_integer = false;
  std::string name;
};

/// Mutable model under construction.  Indices returned by `add_variable`
/// are stable and used in `linear_term::var`.
class problem {
 public:
  /// Adds a continuous variable; returns its index.
  /// Throws std::invalid_argument if lower > upper.
  std::size_t add_variable(double cost, double lower = 0.0,
                           double upper = std::numeric_limits<double>::infinity(),
                           std::string name = {});

  /// Adds an integer variable; returns its index.
  std::size_t add_integer_variable(
      double cost, double lower = 0.0,
      double upper = std::numeric_limits<double>::infinity(),
      std::string name = {});

  /// Adds a constraint row.  Throws std::out_of_range if a term references
  /// an unknown variable, std::invalid_argument on an empty row.
  void add_constraint(std::vector<linear_term> terms, relation rel, double rhs,
                      std::string name = {});

  std::size_t variable_count() const noexcept { return variables_.size(); }
  std::size_t constraint_count() const noexcept { return constraints_.size(); }
  const variable_def& variable(std::size_t i) const { return variables_.at(i); }
  const constraint_def& constraint(std::size_t i) const {
    return constraints_.at(i);
  }
  const std::vector<variable_def>& variables() const noexcept {
    return variables_;
  }
  const std::vector<constraint_def>& constraints() const noexcept {
    return constraints_;
  }

  /// Tightens a variable's box bounds (used by branch & bound).
  /// Throws std::invalid_argument if the result is an empty box.
  void set_bounds(std::size_t var, double lower, double upper);

  /// Replaces a constraint's right-hand side (the batched allocator's
  /// per-period demand update; the matrix stays fixed).  A dense_tableau
  /// built on this problem picks the move up via sync_constraint_rhs.
  /// Throws std::out_of_range on an unknown constraint.
  void set_constraint_rhs(std::size_t i, double rhs);

  /// True if any variable is marked integral.
  bool has_integer_variables() const noexcept;

  /// Objective value of a given assignment (no feasibility check).
  double objective_value(const std::vector<double>& x) const;

  /// Checks an assignment against all rows and bounds within `tol`.
  bool is_feasible(const std::vector<double>& x, double tol = 1e-6) const;

 private:
  std::vector<variable_def> variables_;
  std::vector<constraint_def> constraints_;
};

/// Terminal state of a solve.
enum class solve_status {
  optimal,
  infeasible,
  unbounded,
  iteration_limit,
};

/// Human-readable status name.
const char* to_string(solve_status s) noexcept;

/// Result of an LP or ILP solve.
struct solution {
  solve_status status = solve_status::infeasible;
  double objective = 0.0;
  std::vector<double> values;
  /// Solver effort: simplex pivots for solve_lp, branch-and-bound nodes
  /// explored for solve_ilp.
  std::size_t iterations = 0;
};

}  // namespace mca::ilp
