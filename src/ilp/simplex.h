// Two-phase dense simplex for the LP relaxations used by branch & bound.
//
// The allocation problems here are tiny (a handful of instance types and
// groups), so a dense tableau with Bland's anti-cycling rule is both simple
// and robust.  Variable boxes are handled by shifting to the lower bound and
// materializing finite upper bounds as rows.
#pragma once

#include "ilp/problem.h"

namespace mca::ilp {

/// Simplex tuning knobs.
struct simplex_options {
  /// Hard cap on pivots across both phases.
  std::size_t max_iterations = 10'000;
  /// Feasibility / optimality tolerance.
  double tolerance = 1e-9;
};

/// Solves the continuous relaxation of `p` (integrality ignored).
///
/// Returns status `optimal` with the minimizing assignment, `infeasible`,
/// `unbounded`, or `iteration_limit`.
solution solve_lp(const problem& p, const simplex_options& opts = {});

}  // namespace mca::ilp
