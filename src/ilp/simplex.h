// Two-phase dense simplex for the LP relaxations used by branch & bound.
//
// The tableau lives in ilp/tableau.h: one contiguous row-major buffer with
// candidate-list Dantzig pricing (Bland's rule as the anti-cycling
// fallback) and dual-simplex warm starts for branch & bound.  Variable
// boxes are handled by shifting to the lower bound and materializing
// finite upper bounds as rows.
#pragma once

#include "ilp/problem.h"
#include "ilp/tableau.h"

namespace mca::ilp {

/// Solves the continuous relaxation of `p` (integrality ignored).
///
/// Returns status `optimal` with the minimizing assignment, `infeasible`,
/// `unbounded`, or `iteration_limit`.  `solution::iterations` reports the
/// simplex pivots spent.
solution solve_lp(const problem& p, const simplex_options& opts = {});

}  // namespace mca::ilp
