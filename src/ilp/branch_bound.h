// Branch-and-bound integer linear programming on top of the simplex.
//
// Depth-first search over LP relaxations: branch on the most fractional
// integer variable, prune by bound against the incumbent.  Exact for the
// small allocation models this library produces (the paper's cloud cap CC
// is 20 instances over a handful of types).
#pragma once

#include "ilp/problem.h"
#include "ilp/simplex.h"

namespace mca::ilp {

/// Branch & bound tuning knobs.
struct ilp_options {
  /// Cap on explored nodes; exceeding it returns `iteration_limit` (with
  /// the incumbent, if any, in `solution::values`).
  std::size_t max_nodes = 100'000;
  /// A relaxation value is considered integral within this tolerance.
  double integrality_tolerance = 1e-6;
  simplex_options lp;
};

/// Solves the mixed-integer program `p` to optimality.
///
/// Returns `optimal` with the best integral assignment, `infeasible` when
/// no integral point exists, `unbounded` if the relaxation is unbounded,
/// or `iteration_limit` when the node budget ran out (best incumbent
/// returned when one was found).
solution solve_ilp(const problem& p, const ilp_options& opts = {});

}  // namespace mca::ilp
