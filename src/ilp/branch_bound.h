// Branch-and-bound integer linear programming on top of the simplex.
//
// Depth-first search over LP relaxations: branch on the most fractional
// integer variable, prune by bound against the incumbent.  Exact for the
// small allocation models this library produces (the paper's cloud cap CC
// is 20 instances over a handful of types).
#pragma once

#include <vector>

#include "ilp/problem.h"
#include "ilp/simplex.h"
#include "ilp/tableau.h"

namespace mca::ilp {

/// Branch & bound tuning knobs.
struct ilp_options {
  /// Cap on explored nodes; exceeding it returns `iteration_limit` (with
  /// the incumbent, if any, in `solution::values`).
  std::size_t max_nodes = 100'000;
  /// A relaxation value is considered integral within this tolerance.
  double integrality_tolerance = 1e-6;
  simplex_options lp;
};

/// Solves the mixed-integer program `p` to optimality.
///
/// Returns `optimal` with the best integral assignment, `infeasible` when
/// no integral point exists, `unbounded` if the relaxation is unbounded,
/// or `iteration_limit` when the node budget ran out (best incumbent
/// returned when one was found).
solution solve_ilp(const problem& p, const ilp_options& opts = {});

/// Branch & bound from an already-solved root relaxation — the warm path
/// the batched allocator drives: the caller keeps one persistent tableau
/// across solves (problem::set_constraint_rhs + dense_tableau::
/// sync_constraint_rhs + resolve) and hands a copy of it in here with the
/// status that last (re)solve returned.  `incumbent_hint`, when non-null,
/// integral, and still feasible for `p`, seeds the incumbent so consecutive
/// solves whose demands barely move open with a near-optimal cutoff and
/// usually prune the whole tree at the root.  `p` must be the problem the
/// tableau was built on (with its current rhs values).
solution solve_ilp_warm(const problem& p, dense_tableau root,
                        solve_status root_status, const ilp_options& opts,
                        const std::vector<double>* incumbent_hint = nullptr);

}  // namespace mca::ilp
