// Dense bounded-variable simplex tableau with warm-start support.
//
// One contiguous row-major buffer (rows x stride) instead of a
// vector-of-vectors: pivots stream through memory linearly and the whole
// state is copyable with a few memcpys, which is what lets branch & bound
// snapshot a node cheaply.  Entering-variable selection is Dantzig pricing
// over a small candidate list refreshed from a rotating cursor, with a
// Bland-rule fallback when a degenerate streak suggests cycling.
//
// Variable upper bounds are implicit (bounded-variable simplex), not rows:
// the tableau holds only the problem's true constraints, and every column
// carries an at-lower/at-upper nonbasic state instead of a bound row plus
// slack.  An at-upper column is stored sign-flipped so its tableau-space
// value is zero like any other nonbasic, which keeps the pivot arithmetic
// standard; the primal ratio test gains two extra exits — a basic variable
// reaching its finite upper bound (the leaving row is flipped into its
// distance-from-upper form, then pivoted normally) and the entering
// variable traversing its whole span (a pivot-free bound flip) — and the
// dual simplex treats an above-upper basic value by flipping it into an
// ordinary below-zero violation.  For the allocator's models, where every
// column is capped by the account limit, this halves the tableau: G·C
// bound rows and their slack columns simply never exist.
//
// Child nodes of branch & bound do not rebuild: `tighten_lower` /
// `tighten_upper` adjust the right-hand side in place (an O(rows) column
// sweep, or a pure bookkeeping update when the tightened side is not the
// one the variable currently sits at) and `resolve` re-optimizes with the
// bound-aware dual simplex from the parent basis.  A variable gaining its
// first finite upper bound is just a span update — unlike the explicit-row
// formulation there is no structural change, so the full primal rebuild
// remains only as the fallback for a dual iteration-budget blowout.
#pragma once

#include <cstddef>
#include <vector>

#include "ilp/problem.h"

namespace mca::ilp {

/// Simplex tuning knobs.
struct simplex_options {
  /// Hard cap on pivots across both phases.
  std::size_t max_iterations = 10'000;
  /// Feasibility / optimality tolerance.
  double tolerance = 1e-9;
};

class dense_tableau {
 public:
  /// Captures `p`'s bounds; does not build yet (solve() does).  `p` must
  /// outlive the tableau (and any copies of it).
  /// Throws std::invalid_argument on a variable with infinite lower bound.
  dense_tableau(const problem& p, double tol);

  /// Full two-phase primal solve from scratch (rebuilds the tableau from
  /// the problem plus the currently recorded bounds).
  solve_status solve(const simplex_options& opts);

  /// Re-optimizes after tighten_* calls: dual simplex from the current
  /// basis when possible, otherwise a fresh solve().  Must follow a
  /// solve()/resolve() that returned `optimal`.
  solve_status resolve(const simplex_options& opts);

  /// Raises the lower bound of `var` (no-op if `lo` is not tighter).
  void tighten_lower(std::size_t var, double lo);
  /// Lowers the upper bound of `var` (no-op if `hi` is not tighter).
  void tighten_upper(std::size_t var, double hi);

  /// Picks up a changed right-hand side of constraint `row` from the
  /// problem (after problem::set_constraint_rhs) without rebuilding: the
  /// basic values shift by B⁻¹Δb — read off the current tableau column of
  /// the row's original basic variable, which started as the unit vector of
  /// that row — while the basis and the (still dual-feasible) cost row stay
  /// put, so a following resolve() repairs primal feasibility with a few
  /// dual pivots.  This is what lets consecutive allocation solves whose
  /// demands barely move reuse one warm tableau across solves.
  void sync_constraint_rhs(std::size_t row);

  /// Reduced-cost bound tightening against an incumbent: after an optimal
  /// (re)solve whose objective sits `slack` below the cutoff, a nonbasic
  /// variable with reduced cost d can move at most slack / d from the
  /// bound it sits at before the objective crosses the cutoff, so its far
  /// bound is pulled in to that reach (rounded down for integer
  /// variables).  The current vertex stays put and the rhs is untouched —
  /// in the bounded-variable representation this is free — but the search
  /// box handed to child nodes shrinks, often to a single point.
  void tighten_by_reduced_costs(double slack);

  double lower(std::size_t var) const { return shift_[var]; }
  double upper(std::size_t var) const { return upper_[var]; }

  /// Writes the assignment and objective of the last optimal solve.  The
  /// emitted values are clamped to the variable boxes, so downstream
  /// consumers never see a tolerance-level bound violation (e.g. -1e-10).
  void extract(solution& out) const;

  /// Pivots performed by this tableau (all solves, both phases; pivot-free
  /// bound flips count too — they are iterations of the same loop).
  std::size_t pivots() const noexcept { return pivots_; }

 private:
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  double& at(std::size_t row, std::size_t col) {
    return tab_[row * stride_ + col];
  }
  double at(std::size_t row, std::size_t col) const {
    return tab_[row * stride_ + col];
  }
  double* row_ptr(std::size_t row) { return tab_.data() + row * stride_; }

  /// Width of column `col`'s box in tableau space: upper - lower for a
  /// structural variable (possibly infinite), infinite for slacks and
  /// artificials.
  double span(std::size_t col) const;

  void build();
  void pivot(std::size_t row, std::size_t col);
  /// Moves nonbasic `col` to its other bound: rhs sweep, column and
  /// reduced-cost negation, flag toggle.  Self-inverse.
  void flip_nonbasic(std::size_t col);
  /// Re-expresses the basic variable of `row` as its distance from its
  /// (finite) upper bound, so "leaves at upper" / "violates upper" reduce
  /// to the ordinary at-zero cases.
  void flip_basic_row(std::size_t row);
  void price_out_basis();
  std::size_t choose_entering(std::size_t limit);
  solve_status primal(std::size_t limit, std::size_t max_iters,
                      std::size_t& used);
  solve_status dual(const simplex_options& opts);

  const problem* problem_ = nullptr;
  double tol_ = 1e-9;

  // Current variable boxes (start as the problem's, tightened by branch &
  // bound).  shift_ doubles as the lower bound and the substitution shift.
  std::vector<double> shift_;
  std::vector<double> upper_;

  // Tableau proper.
  std::size_t num_rows_ = 0;
  std::size_t num_structural_ = 0;
  std::size_t first_artificial_ = 0;
  std::size_t num_cols_ = 0;
  std::size_t stride_ = 0;
  std::vector<double> tab_;   // num_rows_ x stride_, row-major
  std::vector<double> rhs_;
  std::vector<double> cost_;  // reduced-cost row of the active objective
  std::vector<std::size_t> basis_;
  std::vector<char> flipped_;  // column stored as distance-from-upper?

  // Per-row bookkeeping for sync_constraint_rhs: the problem rhs the build
  // used, whether the row was sign-normalized, and the slack/artificial
  // column that carried the row's build-time unit vector (so its current
  // column is B⁻¹e_row at any basis).
  std::vector<double> built_rhs_;
  std::vector<char> row_negated_;
  std::vector<std::size_t> row_anchor_;

  // Pricing state.
  std::vector<std::size_t> candidates_;
  std::size_t price_cursor_ = 0;
  std::size_t degenerate_streak_ = 0;

  bool built_ = false;
  bool needs_rebuild_ = true;
  bool dual_ready_ = false;  // phase-2 cost row valid for dual warm starts
  std::size_t pivots_ = 0;
};

}  // namespace mca::ilp
