// Dense simplex tableau with warm-start support.
//
// One contiguous row-major buffer (rows x stride) instead of a
// vector-of-vectors: pivots stream through memory linearly and the whole
// state is copyable with three memcpys, which is what lets branch & bound
// snapshot a node cheaply.  Entering-variable selection is Dantzig pricing
// over a small candidate list refreshed from a rotating cursor, with a
// Bland-rule fallback when a degenerate streak suggests cycling.
//
// Child nodes of branch & bound do not rebuild: `tighten_lower` /
// `tighten_upper` adjust the right-hand side in place (an O(rows) column
// sweep) and `resolve` re-optimizes with the dual simplex from the parent
// basis, falling back to a full primal rebuild only when the tightening
// cannot be expressed in place (a variable gaining its first finite upper
// bound) or the dual iteration budget runs out.
#pragma once

#include <cstddef>
#include <vector>

#include "ilp/problem.h"

namespace mca::ilp {

/// Simplex tuning knobs.
struct simplex_options {
  /// Hard cap on pivots across both phases.
  std::size_t max_iterations = 10'000;
  /// Feasibility / optimality tolerance.
  double tolerance = 1e-9;
};

class dense_tableau {
 public:
  /// Captures `p`'s bounds; does not build yet (solve() does).  `p` must
  /// outlive the tableau (and any copies of it).
  /// Throws std::invalid_argument on a variable with infinite lower bound.
  dense_tableau(const problem& p, double tol);

  /// Full two-phase primal solve from scratch (rebuilds the tableau from
  /// the problem plus the currently recorded bounds).
  solve_status solve(const simplex_options& opts);

  /// Re-optimizes after tighten_* calls: dual simplex from the current
  /// basis when possible, otherwise a fresh solve().  Must follow a
  /// solve()/resolve() that returned `optimal`.
  solve_status resolve(const simplex_options& opts);

  /// Raises the lower bound of `var` (no-op if `lo` is not tighter).
  void tighten_lower(std::size_t var, double lo);
  /// Lowers the upper bound of `var` (no-op if `hi` is not tighter).
  void tighten_upper(std::size_t var, double hi);

  double lower(std::size_t var) const { return shift_[var]; }
  double upper(std::size_t var) const { return upper_[var]; }

  /// Writes the assignment and objective of the last optimal solve.
  void extract(solution& out) const;

  /// Pivots performed by this tableau (all solves, both phases).
  std::size_t pivots() const noexcept { return pivots_; }

 private:
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  double& at(std::size_t row, std::size_t col) {
    return tab_[row * stride_ + col];
  }
  double at(std::size_t row, std::size_t col) const {
    return tab_[row * stride_ + col];
  }
  double* row_ptr(std::size_t row) { return tab_.data() + row * stride_; }

  void build();
  void pivot(std::size_t row, std::size_t col);
  void price_out_basis();
  std::size_t choose_entering(std::size_t limit);
  std::size_t choose_leaving(std::size_t entering) const;
  solve_status primal(std::size_t limit, std::size_t max_iters,
                      std::size_t& used);
  solve_status dual(const simplex_options& opts);

  const problem* problem_ = nullptr;
  double tol_ = 1e-9;

  // Current variable boxes (start as the problem's, tightened by branch &
  // bound).  shift_ doubles as the lower bound and the substitution shift.
  std::vector<double> shift_;
  std::vector<double> upper_;

  // Tableau proper.
  std::size_t num_rows_ = 0;
  std::size_t num_structural_ = 0;
  std::size_t first_artificial_ = 0;
  std::size_t num_cols_ = 0;
  std::size_t stride_ = 0;
  std::vector<double> tab_;   // num_rows_ x stride_, row-major
  std::vector<double> rhs_;
  std::vector<double> cost_;  // reduced-cost row of the active objective
  std::vector<std::size_t> basis_;
  std::vector<std::size_t> upper_row_;    // bound row per variable (or npos)
  std::vector<std::size_t> upper_slack_;  // that row's slack column

  // Pricing state.
  std::vector<std::size_t> candidates_;
  std::size_t price_cursor_ = 0;
  std::size_t degenerate_streak_ = 0;

  bool built_ = false;
  bool needs_rebuild_ = true;
  bool dual_ready_ = false;  // phase-2 cost row valid for dual warm starts
  std::size_t pivots_ = 0;
};

}  // namespace mca::ilp
