#include "ilp/branch_bound.h"

#include <cmath>
#include <limits>
#include <optional>
#include <utility>
#include <vector>

namespace mca::ilp {
namespace {

struct node {
  // Box-bound overrides accumulated along this branch.
  std::vector<std::pair<std::size_t, std::pair<double, double>>> bounds;
};

/// Index of the integer variable whose relaxation value is farthest from
/// integral, or nullopt if all are integral within tol.
std::optional<std::size_t> most_fractional(const problem& p,
                                           const std::vector<double>& x,
                                           double tol) {
  std::optional<std::size_t> best;
  double best_frac_distance = tol;
  for (std::size_t j = 0; j < p.variable_count(); ++j) {
    if (!p.variable(j).is_integer) continue;
    const double frac = x[j] - std::floor(x[j]);
    const double distance = std::min(frac, 1.0 - frac);
    if (distance > best_frac_distance) {
      best_frac_distance = distance;
      best = j;
    }
  }
  return best;
}

}  // namespace

solution solve_ilp(const problem& p, const ilp_options& opts) {
  if (!p.has_integer_variables()) return solve_lp(p, opts.lp);

  solution incumbent;
  incumbent.status = solve_status::infeasible;
  incumbent.objective = std::numeric_limits<double>::infinity();

  std::vector<node> stack;
  stack.push_back({});
  std::size_t explored = 0;
  bool root_unbounded = false;
  bool budget_exhausted = false;

  problem scratch = p;
  while (!stack.empty()) {
    if (explored >= opts.max_nodes) {
      budget_exhausted = true;
      break;
    }
    ++explored;
    const node current = std::move(stack.back());
    stack.pop_back();

    // Apply this node's bounds on a fresh copy of the base problem.
    scratch = p;
    bool empty_box = false;
    for (const auto& [var, box] : current.bounds) {
      if (box.first > box.second) {
        empty_box = true;
        break;
      }
      // Intersect with existing bounds.
      const auto& v = scratch.variable(var);
      const double lo = std::max(v.lower, box.first);
      const double hi = std::min(v.upper, box.second);
      if (lo > hi) {
        empty_box = true;
        break;
      }
      scratch.set_bounds(var, lo, hi);
    }
    if (empty_box) continue;

    const solution relaxed = solve_lp(scratch, opts.lp);
    if (relaxed.status == solve_status::unbounded) {
      // An unbounded relaxation at the root means the MIP is unbounded or
      // infeasible; report unbounded (callers here always bound variables).
      if (current.bounds.empty()) root_unbounded = true;
      continue;
    }
    if (relaxed.status != solve_status::optimal) continue;
    if (relaxed.objective >= incumbent.objective - 1e-9) continue;  // bound

    const auto branch_var =
        most_fractional(p, relaxed.values, opts.integrality_tolerance);
    if (!branch_var) {
      // Integral within tolerance: round and accept as incumbent.
      solution candidate = relaxed;
      for (std::size_t j = 0; j < p.variable_count(); ++j) {
        if (p.variable(j).is_integer) {
          candidate.values[j] = std::round(candidate.values[j]);
        }
      }
      candidate.objective = p.objective_value(candidate.values);
      if (p.is_feasible(candidate.values) &&
          candidate.objective < incumbent.objective) {
        incumbent = candidate;
        incumbent.status = solve_status::optimal;
      }
      continue;
    }

    const std::size_t j = *branch_var;
    const double value = relaxed.values[j];
    constexpr double kInf = std::numeric_limits<double>::infinity();

    node down = current;
    down.bounds.emplace_back(j, std::make_pair(-kInf, std::floor(value)));
    node up = current;
    up.bounds.emplace_back(j, std::make_pair(std::ceil(value), kInf));
    // Explore the branch nearer the relaxation first (DFS: push it last).
    if (value - std::floor(value) < 0.5) {
      stack.push_back(std::move(up));
      stack.push_back(std::move(down));
    } else {
      stack.push_back(std::move(down));
      stack.push_back(std::move(up));
    }
  }

  if (budget_exhausted && incumbent.status != solve_status::optimal) {
    incumbent.status = solve_status::iteration_limit;
    return incumbent;
  }
  if (budget_exhausted) {
    // Return the incumbent but flag that optimality was not proven.
    incumbent.status = solve_status::iteration_limit;
    return incumbent;
  }
  if (incumbent.status != solve_status::optimal && root_unbounded) {
    incumbent.status = solve_status::unbounded;
  }
  return incumbent;
}

}  // namespace mca::ilp
