#include "ilp/branch_bound.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <optional>
#include <utility>
#include <vector>

#include "ilp/tableau.h"

namespace mca::ilp {
namespace {

/// One unexplored branch: the parent's optimal tableau plus the single
/// bound tightening that defines the child.  The child re-optimizes with
/// the dual simplex from the parent basis instead of rebuilding.
struct search_node {
  dense_tableau state;
  std::size_t var = 0;
  double bound = 0.0;
  bool raise_lower = false;  // true: lower := bound, false: upper := bound
};

/// Index of the integer variable whose relaxation value is farthest from
/// integral, or nullopt if all are integral within tol.
std::optional<std::size_t> most_fractional(const problem& p,
                                           const std::vector<double>& x,
                                           double tol) {
  std::optional<std::size_t> best;
  double best_frac_distance = tol;
  for (std::size_t j = 0; j < p.variable_count(); ++j) {
    if (!p.variable(j).is_integer) continue;
    const double frac = x[j] - std::floor(x[j]);
    const double distance = std::min(frac, 1.0 - frac);
    if (distance > best_frac_distance) {
      best_frac_distance = distance;
      best = j;
    }
  }
  return best;
}

/// Greedy feasibility-preserving trim of an integral candidate: walk the
/// positive-cost integer variables from most to least expensive and shed
/// the units feasibility does not need.  Turns the blunt ceil incumbent —
/// which rounds every fractional helper up, including ones another
/// column's rounding already covered — into a minimal cover before it
/// becomes the search cutoff.  Row activities are computed once and
/// updated incrementally, so a trim costs O(nnz + shed columns), not a
/// full feasibility scan per shed unit.
void trim_candidate(const problem& p, std::vector<double>& x) {
  std::vector<double> activity(p.constraint_count(), 0.0);
  std::vector<std::vector<std::pair<std::size_t, double>>> rows_of(
      p.variable_count());
  for (std::size_t i = 0; i < p.constraint_count(); ++i) {
    for (const auto& term : p.constraint(i).terms) {
      activity[i] += term.coeff * x[term.var];
      rows_of[term.var].push_back({i, term.coeff});
    }
  }

  std::vector<std::size_t> order;
  for (std::size_t j = 0; j < p.variable_count(); ++j) {
    const auto& v = p.variable(j);
    if (v.is_integer && v.cost > 0.0 && x[j] > v.lower + 0.5) {
      order.push_back(j);
    }
  }
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return p.variable(a).cost > p.variable(b).cost;
  });

  for (const std::size_t j : order) {
    // Shedding u units moves every row's lhs by -coeff * u; the row's
    // slack bounds u from above (an equality row pins it at zero).
    double max_shed = x[j] - p.variable(j).lower;
    for (const auto& [i, coeff] : rows_of[j]) {
      const auto& c = p.constraint(i);
      switch (c.rel) {
        case relation::greater_equal:
          if (coeff > 0.0) {
            max_shed = std::min(max_shed, (activity[i] - c.rhs) / coeff);
          }
          break;
        case relation::less_equal:
          if (coeff < 0.0) {
            max_shed = std::min(max_shed, (c.rhs - activity[i]) / -coeff);
          }
          break;
        case relation::equal:
          if (std::abs(coeff) > 1e-12) max_shed = 0.0;
          break;
      }
      if (max_shed <= 0.0) break;
    }
    const double shed = std::floor(max_shed + 1e-9);
    if (shed <= 0.0) continue;
    x[j] -= shed;
    for (const auto& [i, coeff] : rows_of[j]) activity[i] -= coeff * shed;
  }
}

}  // namespace

solution solve_ilp(const problem& p, const ilp_options& opts) {
  if (!p.has_integer_variables()) return solve_lp(p, opts.lp);
  if (opts.max_nodes == 0) {
    solution out;
    out.status = solve_status::iteration_limit;
    out.objective = std::numeric_limits<double>::infinity();
    return out;
  }
  dense_tableau root{p, opts.lp.tolerance};
  const solve_status status = root.solve(opts.lp);
  return solve_ilp_warm(p, std::move(root), status, opts);
}

solution solve_ilp_warm(const problem& p, dense_tableau root,
                        solve_status root_status, const ilp_options& opts,
                        const std::vector<double>* incumbent_hint) {
  if (opts.max_nodes == 0) {
    // Mirror solve_ilp's guard (including ignoring the hint): a zero node
    // budget yields no incumbent on either path, so the batched
    // allocator's results stay identical to independent cold solves.
    solution out;
    out.status = solve_status::iteration_limit;
    out.objective = std::numeric_limits<double>::infinity();
    return out;
  }
  solution incumbent;
  incumbent.status = solve_status::infeasible;
  incumbent.objective = std::numeric_limits<double>::infinity();
  if (incumbent_hint && incumbent_hint->size() == p.variable_count() &&
      p.is_feasible(*incumbent_hint)) {
    incumbent.values = *incumbent_hint;
    incumbent.objective = p.objective_value(*incumbent_hint);
    incumbent.status = solve_status::optimal;
  }

  std::vector<search_node> stack;
  std::size_t explored = 0;
  bool root_unbounded = false;
  bool budget_exhausted = false;

  // Examines a solved node: prune, accept as incumbent, or branch by
  // pushing two children that inherit this tableau (one by copy, the
  // nearer-to-the-relaxation one by move so it is explored first).
  const auto consider = [&](dense_tableau&& t, solve_status status,
                            bool at_root) {
    if (status == solve_status::unbounded) {
      // An unbounded relaxation at the root means the MIP is unbounded or
      // infeasible; report unbounded (callers here always bound variables).
      if (at_root) root_unbounded = true;
      return;
    }
    if (status == solve_status::iteration_limit) {
      // The LP pivot budget ran out, so this subtree was dropped without a
      // bound proof; the overall result can no longer claim optimality (or
      // infeasibility) — only the incumbent-so-far under iteration_limit.
      budget_exhausted = true;
      return;
    }
    if (status != solve_status::optimal) return;

    solution relaxed;
    t.extract(relaxed);
    if (relaxed.objective >= incumbent.objective - 1e-9) return;  // bound

    if (at_root) {
      // Rounding heuristics on the root relaxation: an early incumbent is
      // what lets reduced-cost tightening collapse the search box before
      // the tree fans out.  Ceiling favors covering (>=) rows; nearest
      // rounding favors balanced ones.  Both are validated before use.
      for (int mode = 0; mode < 2; ++mode) {
        solution candidate;
        candidate.values = relaxed.values;
        for (std::size_t j = 0; j < p.variable_count(); ++j) {
          const auto& v = p.variable(j);
          if (!v.is_integer) continue;
          double value = candidate.values[j];
          value = mode == 0 ? std::ceil(value - 1e-9) : std::round(value);
          candidate.values[j] = std::min(std::max(value, v.lower), v.upper);
        }
        if (!p.is_feasible(candidate.values)) continue;
        trim_candidate(p, candidate.values);
        candidate.objective = p.objective_value(candidate.values);
        if (candidate.objective < incumbent.objective) {
          incumbent = std::move(candidate);
          incumbent.status = solve_status::optimal;
        }
      }
    }
    // Pull in every nonbasic variable's far bound to its reduced-cost
    // reach below the incumbent; children inherit the shrunken box.  The
    // 1e-6 safety margin covers extract()'s tolerance-level clamping of
    // basic values, which can overstate the node bound: the computed reach
    // may then only err loose (weaker fixing), never cut the optimum.
    if (std::isfinite(incumbent.objective)) {
      t.tighten_by_reduced_costs(incumbent.objective + 1e-6 -
                                 relaxed.objective);
    }

    const auto branch_var =
        most_fractional(p, relaxed.values, opts.integrality_tolerance);
    if (!branch_var) {
      // Integral within tolerance: round and accept as incumbent.
      solution candidate = std::move(relaxed);
      for (std::size_t j = 0; j < p.variable_count(); ++j) {
        if (p.variable(j).is_integer) {
          candidate.values[j] = std::round(candidate.values[j]);
        }
      }
      candidate.objective = p.objective_value(candidate.values);
      if (p.is_feasible(candidate.values) &&
          candidate.objective < incumbent.objective) {
        incumbent = std::move(candidate);
        incumbent.status = solve_status::optimal;
      }
      return;
    }

    const std::size_t j = *branch_var;
    const double value = relaxed.values[j];
    const double down_bound = std::floor(value);
    const double up_bound = std::ceil(value);
    const bool down_feasible = down_bound >= t.lower(j) - 1e-12;
    const bool up_feasible = up_bound <= t.upper(j) + 1e-12;
    // Explore the branch nearer the relaxation first (DFS: push it last).
    const bool down_first = value - down_bound < 0.5;
    const bool push_both = down_feasible && up_feasible;
    if (push_both) {
      // The farther branch gets the copy; the nearer one steals the state.
      if (down_first) {
        stack.push_back({t, j, up_bound, true});
        stack.push_back({std::move(t), j, down_bound, false});
      } else {
        stack.push_back({t, j, down_bound, false});
        stack.push_back({std::move(t), j, up_bound, true});
      }
    } else if (down_feasible) {
      stack.push_back({std::move(t), j, down_bound, false});
    } else if (up_feasible) {
      stack.push_back({std::move(t), j, up_bound, true});
    }
  };

  // Root relaxation, solved by the caller (cold path: solve_ilp; warm
  // path: the batched allocator's persistent tableau after an rhs sync).
  ++explored;
  consider(std::move(root), root_status, /*at_root=*/true);

  while (!stack.empty()) {
    if (explored >= opts.max_nodes) {
      budget_exhausted = true;
      break;
    }
    ++explored;
    search_node node = std::move(stack.back());
    stack.pop_back();

    if (node.raise_lower) {
      node.state.tighten_lower(node.var, node.bound);
    } else {
      node.state.tighten_upper(node.var, node.bound);
    }
    // Bound-aware dual-simplex warm start from the parent basis.  Every
    // tightening — including a variable's first finite upper bound — is an
    // in-place bound-state update, so the full rebuild only triggers when
    // the dual iteration budget blows out.
    const solve_status status = node.state.resolve(opts.lp);
    consider(std::move(node.state), status, /*at_root=*/false);
  }

  incumbent.iterations = explored;
  if (budget_exhausted) {
    // Return the incumbent (if any) but flag that optimality was not proven.
    incumbent.status = solve_status::iteration_limit;
    return incumbent;
  }
  if (incumbent.status != solve_status::optimal && root_unbounded) {
    incumbent.status = solve_status::unbounded;
  }
  return incumbent;
}

}  // namespace mca::ilp
