// mca_lint — project-invariant static analysis for the mca tree.
//
// The repo's correctness story is mostly runtime gates (golden
// fingerprints, the counting-allocator hot-path test, sanitizer legs).
// This tool is their static twin: it walks src/, bench/, tests/ and
// tools/ and enforces the invariants those gates rely on *everywhere*,
// not just on the code paths a fixed-seed run happens to execute.
//
// Rule families (rule ids in brackets):
//
//  hot-path hygiene — inside regions bracketed by
//      // mca:hot-path-begin(<tag>)  ...  // mca:hot-path-end
//    ban heap allocation [hot-alloc], node-based containers [hot-alloc],
//    std::function construction [hot-function], unreserved push_back on
//    local vectors [hot-vector-growth], mutexes/locks [hot-lock], throw
//    [hot-throw] and stdio/iostream I/O [hot-io].  Region markers must
//    balance [hot-region].
//
//  determinism (src/ only) — ban ambient randomness [det-random]
//    (rand, srand, std::random_device), clock reads [det-wallclock]
//    (system_clock/steady_clock/..., time(), gettimeofday, ...), and
//    range-for iteration over unordered containers [det-unordered-iter]
//    anywhere in the library: everything under src/ can feed a digest or
//    fingerprint.  The few legitimate wall-clock sites (bench timing,
//    tracer wall lanes) carry explicit allow() suppressions with reasons.
//
//  header hygiene — every header needs #pragma once or an include guard
//    [hdr-guard] and must not contain using-namespace [hdr-using-namespace].
//    (Self-containment is enforced by the generated one-TU-per-header
//    build, see MCA_HEADER_SELFCHECK in CMakeLists.txt.)
//
//  obs discipline — the observability enums are cross-referenced against
//    the rest of the tree: every enum value must be recorded or read
//    somewhere outside its defining files [obs-dead-counter], every use
//    must name a registered value [obs-unknown-counter], and every value
//    needs an entry in its name table [obs-unnamed-counter].  The
//    counter/gauge/series enums in obs/registry.h (names in
//    registry.cpp) and alert_kind in obs/alerts.h (names in alerts.cpp)
//    share those rules; span_kind in obs/tracer.h gets the same checks
//    under its own rule ids [obs-dead-span] / [obs-unknown-span] /
//    [obs-unnamed-span] — so every span kind provably has at least one
//    recording site and an exporter name-table entry in tracer.cpp.
//
// Suppressions:  // mca-lint: allow(<rule>[,<rule>...]) <reason>
// suppresses matching violations on its own line (or, when the comment
// stands alone, on the following line).  // mca-lint: allow-file(<rule>)
// <reason> suppresses for the whole file.  The reason is mandatory — an
// allow without one is itself a violation [bad-suppression].
//
// Output: one "file:line: rule: message" per violation; exit 0 iff clean.
// --self-test runs the rules against embedded known-bad snippets so the
// lint's own behavior is gated by ctest like everything else.

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "lexer.h"

namespace mca::lint {
namespace {

struct violation {
  std::string file;
  int line = 0;
  std::string rule;
  std::string message;
};

struct allow_directive {
  int line = 0;
  bool own_line = false;
  bool whole_file = false;
  std::vector<std::string> rules;
  bool has_reason = false;
};

struct hot_region {
  int begin = 0;
  int end = 0;  ///< 0 while unclosed
  std::string tag;
};

struct source_file {
  std::string display;  ///< path relative to the scan root
  bool is_header = false;
  bool in_src = false;  ///< under src/ → determinism rules apply
  lex_result lex;
  std::vector<allow_directive> allows;
  std::vector<hot_region> regions;
};

const std::set<std::string>& known_rules() {
  static const std::set<std::string> rules{
      "hot-alloc",        "hot-function",      "hot-vector-growth",
      "hot-lock",         "hot-throw",         "hot-io",
      "hot-string-build", "hot-region",        "det-random",
      "det-wallclock",
      "det-unordered-iter", "hdr-guard",       "hdr-using-namespace",
      "obs-dead-counter", "obs-unknown-counter", "obs-unnamed-counter",
      "obs-dead-span",    "obs-unknown-span",    "obs-unnamed-span",
      "bad-suppression"};
  return rules;
}

// ---- directive parsing ---------------------------------------------------

/// Splits "a, b" into trimmed names.
std::vector<std::string> split_rule_list(const std::string& s) {
  std::vector<std::string> out;
  std::string cur;
  for (const char c : s) {
    if (c == ',') {
      if (!cur.empty()) out.push_back(cur);
      cur.clear();
    } else if (c != ' ' && c != '\t') {
      cur += c;
    }
  }
  if (!cur.empty()) out.push_back(cur);
  return out;
}

void parse_directives(source_file& f, std::vector<violation>& out) {
  std::vector<hot_region> open;
  for (const comment& cm : f.lex.comments) {
    const std::string& text = cm.text;
    if (text.rfind("mca:hot-path-begin(", 0) == 0) {
      const auto close = text.find(')');
      const std::string tag =
          close == std::string::npos
              ? std::string{}
              : text.substr(19, close - 19);
      if (tag.empty()) {
        out.push_back({f.display, cm.line, "hot-region",
                       "hot-path-begin needs a (tag)"});
      }
      open.push_back({cm.line, 0, tag});
      continue;
    }
    if (text.rfind("mca:hot-path-end", 0) == 0) {
      if (open.empty()) {
        out.push_back({f.display, cm.line, "hot-region",
                       "hot-path-end without matching begin"});
        continue;
      }
      open.back().end = cm.line;
      f.regions.push_back(open.back());
      open.pop_back();
      continue;
    }
    if (text.rfind("mca-lint:", 0) == 0) {
      std::string rest = text.substr(9);
      const auto first = rest.find_first_not_of(" \t");
      rest = first == std::string::npos ? std::string{} : rest.substr(first);
      const bool whole_file = rest.rfind("allow-file(", 0) == 0;
      const bool one_line = rest.rfind("allow(", 0) == 0;
      if (!whole_file && !one_line) {
        out.push_back({f.display, cm.line, "bad-suppression",
                       "unrecognized mca-lint directive: " + rest});
        continue;
      }
      const auto open_paren = rest.find('(');
      const auto close_paren = rest.find(')', open_paren);
      if (close_paren == std::string::npos) {
        out.push_back({f.display, cm.line, "bad-suppression",
                       "allow() missing closing parenthesis"});
        continue;
      }
      allow_directive d;
      d.line = cm.line;
      d.own_line = cm.own_line;
      d.whole_file = whole_file;
      d.rules = split_rule_list(
          rest.substr(open_paren + 1, close_paren - open_paren - 1));
      std::string reason = rest.substr(close_paren + 1);
      const auto r = reason.find_first_not_of(" \t");
      d.has_reason = r != std::string::npos;
      if (d.rules.empty()) {
        out.push_back({f.display, cm.line, "bad-suppression",
                       "allow() names no rules"});
      }
      for (const std::string& rule : d.rules) {
        if (known_rules().count(rule) == 0) {
          out.push_back({f.display, cm.line, "bad-suppression",
                         "allow() names unknown rule '" + rule + "'"});
        }
      }
      if (!d.has_reason) {
        out.push_back({f.display, cm.line, "bad-suppression",
                       "allow() needs a written reason after the ')'"});
      }
      f.allows.push_back(std::move(d));
      continue;
    }
  }
  for (const hot_region& r : open) {
    out.push_back({f.display, r.begin, "hot-region",
                   "hot-path-begin(" + r.tag + ") never closed"});
  }
}

// ---- token helpers -------------------------------------------------------

bool is_ident(const token& t, const char* text) {
  return t.kind == token_kind::identifier && t.text == text;
}

bool is_punct(const token& t, char c) {
  return t.kind == token_kind::punct && t.text.size() == 1 && t.text[0] == c;
}

/// True when tokens i-3..i-1 spell `std::` (three tokens: std, :, :).
bool std_qualified(const std::vector<token>& tk, std::size_t i) {
  return i >= 3 && is_punct(tk[i - 1], ':') && is_punct(tk[i - 2], ':') &&
         is_ident(tk[i - 3], "std");
}

/// True when token i is part of a `foo::bar` chain on its right
/// (identifier followed by ::) — used to skip e.g. `map::iterator` false
/// positives where `map` is a nested name we already flagged.
bool followed_by_scope(const std::vector<token>& tk, std::size_t i) {
  return i + 2 < tk.size() && is_punct(tk[i + 1], ':') &&
         is_punct(tk[i + 2], ':');
}

// ---- hot-path rules ------------------------------------------------------

const std::set<std::string>& node_containers() {
  static const std::set<std::string> names{
      "map",         "multimap",      "set",
      "multiset",    "list",          "forward_list",
      "deque",       "unordered_map", "unordered_set",
      "unordered_multimap", "unordered_multiset"};
  return names;
}

const std::set<std::string>& alloc_calls() {
  static const std::set<std::string> names{
      "malloc", "calloc", "realloc", "strdup", "make_unique", "make_shared"};
  return names;
}

const std::set<std::string>& lock_names() {
  static const std::set<std::string> names{
      "mutex",       "recursive_mutex", "shared_mutex", "timed_mutex",
      "lock_guard",  "unique_lock",     "scoped_lock",  "shared_lock",
      "condition_variable", "condition_variable_any"};
  return names;
}

const std::set<std::string>& io_names() {
  static const std::set<std::string> names{
      "printf", "fprintf", "puts",  "fputs",    "fwrite",  "fread",
      "fopen",  "fclose",  "scanf", "fscanf",   "getchar", "getline",
      "cout",   "cerr",    "clog",  "ofstream", "ifstream", "fstream"};
  return names;
}

void check_hot_regions(const source_file& f, std::vector<violation>& out) {
  auto region_of = [&](int line) -> const hot_region* {
    for (const hot_region& r : f.regions) {
      if (line >= r.begin && (r.end == 0 || line <= r.end)) return &r;
    }
    return nullptr;
  };
  const std::vector<token>& tk = f.lex.tokens;
  // Local-vector tracking for hot-vector-growth: names declared as
  // std::vector inside a hot region, minus those that called reserve().
  std::set<std::string> local_vectors;
  std::set<std::string> reserved;
  const hot_region* prev_region = nullptr;

  for (std::size_t i = 0; i < tk.size(); ++i) {
    const token& t = tk[i];
    const hot_region* region = region_of(t.line);
    if (region != prev_region) {
      local_vectors.clear();
      reserved.clear();
      prev_region = region;
    }
    if (region == nullptr || t.kind != token_kind::identifier) continue;
    const std::string in_tag = " in hot path '" + region->tag + "'";

    if (t.text == "new") {
      out.push_back({f.display, t.line, "hot-alloc",
                     "operator new" + in_tag});
    } else if (alloc_calls().count(t.text) > 0) {
      out.push_back({f.display, t.line, "hot-alloc",
                     t.text + "()" + in_tag});
    } else if (node_containers().count(t.text) > 0 && std_qualified(tk, i)) {
      out.push_back({f.display, t.line, "hot-alloc",
                     "node-based container std::" + t.text + in_tag});
    } else if (t.text == "function" && std_qualified(tk, i)) {
      out.push_back({f.display, t.line, "hot-function",
                     "std::function construction" + in_tag +
                         " (use a concrete callable or SBO lambda)"});
    } else if (lock_names().count(t.text) > 0 && std_qualified(tk, i)) {
      out.push_back({f.display, t.line, "hot-lock",
                     "std::" + t.text + in_tag});
    } else if (t.text.rfind("pthread_mutex", 0) == 0 ||
               t.text.rfind("pthread_cond", 0) == 0) {
      out.push_back({f.display, t.line, "hot-lock", t.text + in_tag});
    } else if (t.text == "throw") {
      out.push_back({f.display, t.line, "hot-throw", "throw" + in_tag});
    } else if ((t.text == "to_string" || t.text == "ostringstream" ||
                t.text == "stringstream") &&
               std_qualified(tk, i)) {
      out.push_back({f.display, t.line, "hot-string-build",
                     "std::" + t.text + in_tag + " (string building "
                     "allocates)"});
    } else if (t.text == "string" && std_qualified(tk, i) &&
               !(i + 1 < tk.size() && (is_punct(tk[i + 1], '&') ||
                                       is_punct(tk[i + 1], '*') ||
                                       is_punct(tk[i + 1], '>')))) {
      // std::string by value / construction allocates; views and
      // references (std::string&, std::string*, a template argument
      // closing with >) pass through.
      out.push_back({f.display, t.line, "hot-string-build",
                     "std::string construction" + in_tag +
                         " (use string_view or an interned id)"});
    } else if (io_names().count(t.text) > 0 &&
               !followed_by_scope(tk, i)) {
      out.push_back({f.display, t.line, "hot-io", t.text + in_tag});
    } else if (t.text == "vector" && std_qualified(tk, i) &&
               i + 1 < tk.size() && is_punct(tk[i + 1], '<')) {
      // std::vector< ... > name  → track `name` as an unreserved local.
      std::size_t j = i + 1;
      int depth = 0;
      while (j < tk.size()) {
        if (is_punct(tk[j], '<')) ++depth;
        if (is_punct(tk[j], '>') && --depth == 0) break;
        ++j;
      }
      if (j + 1 < tk.size() &&
          tk[j + 1].kind == token_kind::identifier) {
        local_vectors.insert(tk[j + 1].text);
      }
    } else if ((t.text == "push_back" || t.text == "emplace_back") &&
               i >= 2 && is_punct(tk[i - 1], '.') &&
               tk[i - 2].kind == token_kind::identifier &&
               local_vectors.count(tk[i - 2].text) > 0 &&
               reserved.count(tk[i - 2].text) == 0) {
      out.push_back({f.display, t.line, "hot-vector-growth",
                     tk[i - 2].text + "." + t.text +
                         " on an unreserved local vector" + in_tag});
    } else if (t.text == "reserve" && i >= 2 && is_punct(tk[i - 1], '.') &&
               tk[i - 2].kind == token_kind::identifier) {
      reserved.insert(tk[i - 2].text);
    }
  }
}

// ---- determinism rules ---------------------------------------------------

const std::set<std::string>& wallclock_names() {
  static const std::set<std::string> names{
      "system_clock", "steady_clock", "high_resolution_clock",
      "gettimeofday", "clock_gettime", "localtime", "gmtime", "strftime"};
  return names;
}

void check_determinism(const source_file& f, std::vector<violation>& out) {
  const std::vector<token>& tk = f.lex.tokens;
  for (std::size_t i = 0; i < tk.size(); ++i) {
    const token& t = tk[i];
    if (t.kind != token_kind::identifier) continue;
    if (t.text == "rand" || t.text == "srand" ||
        t.text == "random_device") {
      out.push_back({f.display, t.line, "det-random",
                     t.text + ": ambient randomness breaks replayable "
                     "digests (use util::rng streams)"});
    } else if (wallclock_names().count(t.text) > 0) {
      out.push_back({f.display, t.line, "det-wallclock",
                     t.text + ": clock reads may not feed digests or "
                     "fingerprints (sim time only)"});
    } else if (t.text == "time" && i + 1 < tk.size() &&
               is_punct(tk[i + 1], '(') &&
               (i == 0 || (tk[i - 1].kind != token_kind::identifier &&
                           !is_punct(tk[i - 1], '.') &&
                           !is_punct(tk[i - 1], ':') &&
                           !is_punct(tk[i - 1], '>')))) {
      // Bare call of ::time() — member calls (.time(), ->time()),
      // qualified names (x::time) and declarations (`double time(...)`,
      // previous token an identifier) don't match.
      out.push_back({f.display, t.line, "det-wallclock",
                     "time(): wall-clock read"});
    }
  }
}

/// Pass A: names declared anywhere in src/ as unordered containers, so
/// pass B can flag range-for iteration over them.
void collect_unordered_names(const source_file& f,
                             std::set<std::string>& names) {
  const std::vector<token>& tk = f.lex.tokens;
  for (std::size_t i = 0; i < tk.size(); ++i) {
    if (tk[i].kind != token_kind::identifier) continue;
    if (tk[i].text != "unordered_map" && tk[i].text != "unordered_set" &&
        tk[i].text != "unordered_multimap" &&
        tk[i].text != "unordered_multiset") {
      continue;
    }
    if (i + 1 >= tk.size() || !is_punct(tk[i + 1], '<')) continue;
    std::size_t j = i + 1;
    int depth = 0;
    while (j < tk.size()) {
      if (is_punct(tk[j], '<')) ++depth;
      if (is_punct(tk[j], '>') && --depth == 0) break;
      ++j;
    }
    if (j + 1 < tk.size() && tk[j + 1].kind == token_kind::identifier) {
      names.insert(tk[j + 1].text);
    }
  }
}

void check_unordered_iteration(const source_file& f,
                               const std::set<std::string>& unordered_names,
                               std::vector<violation>& out) {
  const std::vector<token>& tk = f.lex.tokens;
  for (std::size_t i = 0; i + 1 < tk.size(); ++i) {
    if (!is_ident(tk[i], "for") || !is_punct(tk[i + 1], '(')) continue;
    // Scan the for-header for a top-level range `:` and take the trailing
    // identifier of the range expression.
    int depth = 0;
    std::size_t colon = 0;
    std::size_t close = 0;
    for (std::size_t j = i + 1; j < tk.size(); ++j) {
      if (is_punct(tk[j], '(') || is_punct(tk[j], '[')) ++depth;
      if (is_punct(tk[j], ')') || is_punct(tk[j], ']')) {
        if (--depth == 0) {
          close = j;
          break;
        }
      }
      if (depth == 1 && is_punct(tk[j], ':') && !is_punct(tk[j - 1], ':') &&
          (j + 1 >= tk.size() || !is_punct(tk[j + 1], ':'))) {
        colon = j;
      }
    }
    if (colon == 0 || close == 0) continue;
    for (std::size_t j = colon + 1; j < close; ++j) {
      if (tk[j].kind == token_kind::identifier &&
          unordered_names.count(tk[j].text) > 0) {
        out.push_back(
            {f.display, tk[j].line, "det-unordered-iter",
             "range-for over unordered container '" + tk[j].text +
                 "': iteration order is hash-dependent and may not feed "
                 "digests (iterate an ordered mirror instead)"});
      }
    }
  }
}

// ---- header rules --------------------------------------------------------

void check_header(const source_file& f, std::vector<violation>& out) {
  const std::vector<token>& tk = f.lex.tokens;
  bool guarded = false;
  for (std::size_t i = 0; i + 1 < tk.size() && !guarded; ++i) {
    if (is_ident(tk[i], "pragma") && is_ident(tk[i + 1], "once")) {
      guarded = true;
    }
    if (is_ident(tk[i], "ifndef") && i + 3 < tk.size() &&
        tk[i + 1].kind == token_kind::identifier &&
        is_punct(tk[i + 2], '#') && is_ident(tk[i + 3], "define")) {
      guarded = true;
    }
  }
  if (!guarded) {
    out.push_back({f.display, 1, "hdr-guard",
                   "header lacks #pragma once or an include guard"});
  }
  for (std::size_t i = 0; i + 1 < tk.size(); ++i) {
    if (is_ident(tk[i], "using") && is_ident(tk[i + 1], "namespace")) {
      out.push_back({f.display, tk[i].line, "hdr-using-namespace",
                     "using-namespace in a header leaks into every "
                     "includer"});
    }
  }
}

// ---- obs discipline ------------------------------------------------------

/// One cross-referenced observability enum: where it is defined, which
/// file's string literals form its name table, and the rule-id suffix its
/// violations report under.
struct obs_kind_spec {
  const char* kind;         ///< enum name (counter, span_kind, ...)
  const char* header;       ///< defining header, display path
  const char* name_source;  ///< name-table file, display path
  const char* rule_suffix;  ///< "counter" or "span"
};

constexpr obs_kind_spec kObsKinds[] = {
    {"counter", "src/obs/registry.h", "src/obs/registry.cpp", "counter"},
    {"gauge", "src/obs/registry.h", "src/obs/registry.cpp", "counter"},
    {"series", "src/obs/registry.h", "src/obs/registry.cpp", "counter"},
    {"alert_kind", "src/obs/alerts.h", "src/obs/alerts.cpp", "counter"},
    {"span_kind", "src/obs/tracer.h", "src/obs/tracer.cpp", "span"},
    {"fault_kind", "src/fault/fault_program.h", "src/fault/fault_program.cpp",
     "counter"},
};

const obs_kind_spec* obs_kind(const std::string& kind) {
  for (const obs_kind_spec& spec : kObsKinds) {
    if (kind == spec.kind) return &spec;
  }
  return nullptr;
}

/// True when `display` defines or names `kind` — uses there are the
/// declaration and its exporter, not recording sites.
bool obs_defining_file(const obs_kind_spec& spec, const std::string& display) {
  return display == spec.header || display == spec.name_source;
}

struct obs_enum_value {
  std::string name;
  int line = 0;
};

struct obs_model {
  std::map<std::string, std::vector<obs_enum_value>> enums;  // kind → values
  /// kind → string literals in its name-table file.
  std::map<std::string, std::set<std::string>> name_tables;
};

/// Harvests any cross-referenced enums `f` defines (per kObsKinds).
void parse_obs_enums(const source_file& f, obs_model& model) {
  const std::vector<token>& tk = f.lex.tokens;
  for (std::size_t i = 0; i + 3 < tk.size(); ++i) {
    if (!is_ident(tk[i], "enum") || !is_ident(tk[i + 1], "class")) continue;
    const std::string kind = tk[i + 2].text;
    const obs_kind_spec* spec = obs_kind(kind);
    if (spec == nullptr || f.display != spec->header) continue;
    // Collect identifiers in enumerator position: after '{' or ','.
    std::size_t j = i + 3;
    while (j < tk.size() && !is_punct(tk[j], '{')) ++j;
    bool expect_name = true;
    for (++j; j < tk.size() && !is_punct(tk[j], '}'); ++j) {
      if (expect_name && tk[j].kind == token_kind::identifier) {
        if (tk[j].text != "count") {
          model.enums[kind].push_back({tk[j].text, tk[j].line});
        }
        expect_name = false;
      } else if (is_punct(tk[j], ',')) {
        expect_name = true;
      }
    }
  }
}

void collect_obs_usage(
    const source_file& f,
    std::map<std::string, std::map<std::string, int>>& usage) {
  const std::vector<token>& tk = f.lex.tokens;
  for (std::size_t i = 0; i + 3 < tk.size(); ++i) {
    if (tk[i].kind != token_kind::identifier) continue;
    const std::string& kind = tk[i].text;
    const obs_kind_spec* spec = obs_kind(kind);
    if (spec == nullptr || obs_defining_file(*spec, f.display)) continue;
    if (!is_punct(tk[i + 1], ':') || !is_punct(tk[i + 2], ':')) continue;
    if (tk[i + 3].kind != token_kind::identifier) continue;
    // Record first-seen line per (kind, value).
    usage[kind].emplace(tk[i + 3].text, tk[i + 3].line);
  }
}

void check_obs(const obs_model& model,
               const std::map<std::string,
                              std::map<std::string, int>>& usage,
               const std::map<std::string, std::string>& usage_file,
               std::vector<violation>& out) {
  // Each kind is checked only when its defining enum was actually in the
  // scan set (self-test snippets run on partial trees).
  for (const auto& [kind, values] : model.enums) {
    const obs_kind_spec& spec = *obs_kind(kind);
    const std::string suffix = spec.rule_suffix;
    const auto table_it = model.name_tables.find(kind);
    std::set<std::string> registered;
    for (const obs_enum_value& v : values) registered.insert(v.name);
    // Registered but never recorded/read anywhere else in the tree.
    const auto used_it = usage.find(kind);
    for (const obs_enum_value& v : values) {
      const bool used =
          used_it != usage.end() && used_it->second.count(v.name) > 0;
      if (!used) {
        out.push_back({spec.header, v.line, "obs-dead-" + suffix,
                       kind + "::" + v.name +
                           " is registered but never recorded or read "
                           "outside its defining files"});
      }
      const bool named =
          table_it != model.name_tables.end() &&
          table_it->second.count(v.name) > 0;
      if (!named) {
        out.push_back({spec.header, v.line, "obs-unnamed-" + suffix,
                       kind + "::" + v.name + " missing from the " +
                           spec.name_source + " name table"});
      }
    }
    // Used but not part of the registered enum (tokenizer-level typo net;
    // the compiler catches most of these, but the name tables and JSON
    // emitters refer to values by spelling too).
    if (used_it != usage.end()) {
      for (const auto& [name, line] : used_it->second) {
        if (name == "count" || registered.count(name) > 0) continue;
        const auto file_it = usage_file.find(kind + "::" + name);
        out.push_back({file_it == usage_file.end() ? spec.header
                                                   : file_it->second,
                       line, "obs-unknown-" + suffix,
                       kind + "::" + name + " is not registered in " +
                           spec.header});
      }
    }
  }
}

// ---- suppression filtering ----------------------------------------------

bool suppressed(const source_file& f, const violation& v) {
  for (const allow_directive& d : f.allows) {
    if (std::find(d.rules.begin(), d.rules.end(), v.rule) == d.rules.end()) {
      continue;
    }
    if (!d.has_reason) continue;  // reasonless allows suppress nothing
    if (d.whole_file) return true;
    if (v.line == d.line) return true;
    if (d.own_line) {
      // A standalone allow covers the statement that follows: from the
      // next line holding code (explanatory comment lines in between are
      // fine) through the line of that statement's terminating ';' or
      // block-opening '{' — so multi-line expressions stay coverable
      // without sprinkling one allow per physical line.
      int first = 0;
      int last = 0;
      for (const token& t : f.lex.tokens) {
        if (t.line <= d.line) continue;
        if (first == 0) first = t.line;
        last = t.line;
        if (t.kind == token_kind::punct &&
            (t.text == ";" || t.text == "{")) {
          break;
        }
      }
      if (first != 0 && v.line >= first && v.line <= last) return true;
    }
  }
  return false;
}

// ---- driver --------------------------------------------------------------

struct lint_options {
  std::string root = ".";
  std::string report_path;
  bool verbose = false;
};

std::vector<violation> run_lint(std::vector<source_file>& files) {
  std::vector<violation> raw;
  std::set<std::string> unordered_names;
  obs_model model;
  std::map<std::string, std::map<std::string, int>> obs_usage;
  std::map<std::string, std::string> obs_usage_file;

  for (source_file& f : files) {
    parse_directives(f, raw);
    if (f.in_src) collect_unordered_names(f, unordered_names);
    parse_obs_enums(f, model);
    for (const obs_kind_spec& spec : kObsKinds) {
      if (f.display != spec.name_source) continue;
      for (const token& t : f.lex.tokens) {
        if (t.kind == token_kind::string_literal) {
          model.name_tables[spec.kind].insert(t.text);
        }
      }
    }
  }
  for (const source_file& f : files) {
    check_hot_regions(f, raw);
    if (f.in_src) {
      check_determinism(f, raw);
      check_unordered_iteration(f, unordered_names, raw);
    }
    if (f.is_header) check_header(f, raw);
    std::map<std::string, std::map<std::string, int>> here;
    collect_obs_usage(f, here);
    for (const auto& [kind, values] : here) {
      for (const auto& [name, line] : values) {
        obs_usage[kind].emplace(name, line);
        obs_usage_file.emplace(kind + "::" + name, f.display);
      }
    }
  }
  check_obs(model, obs_usage, obs_usage_file, raw);

  std::vector<violation> kept;
  for (const violation& v : raw) {
    const auto file_it =
        std::find_if(files.begin(), files.end(), [&](const source_file& f) {
          return f.display == v.file;
        });
    if (file_it != files.end() && v.rule != "bad-suppression" &&
        suppressed(*file_it, v)) {
      continue;
    }
    kept.push_back(v);
  }
  std::sort(kept.begin(), kept.end(),
            [](const violation& a, const violation& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              return a.rule < b.rule;
            });
  return kept;
}

source_file make_file(std::string display, std::string contents) {
  source_file f;
  f.display = std::move(display);
  f.is_header = f.display.size() >= 2 &&
                f.display.compare(f.display.size() - 2, 2, ".h") == 0;
  f.in_src = f.display.rfind("src/", 0) == 0;
  f.lex = lex(contents);
  return f;
}

int scan_tree(const lint_options& opts) {
  namespace fs = std::filesystem;
  const fs::path root{opts.root};
  std::vector<std::string> relative_paths;
  for (const char* dir : {"src", "bench", "tests", "tools"}) {
    const fs::path base = root / dir;
    if (!fs::exists(base)) continue;
    for (const auto& entry : fs::recursive_directory_iterator(base)) {
      if (!entry.is_regular_file()) continue;
      const std::string ext = entry.path().extension().string();
      if (ext != ".h" && ext != ".cpp") continue;
      relative_paths.push_back(
          fs::relative(entry.path(), root).generic_string());
    }
  }
  std::sort(relative_paths.begin(), relative_paths.end());

  std::vector<source_file> files;
  files.reserve(relative_paths.size());
  for (const std::string& rel : relative_paths) {
    std::ifstream in{root / rel, std::ios::binary};
    if (!in) {
      std::fprintf(stderr, "mca_lint: cannot read %s\n", rel.c_str());
      return 2;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    files.push_back(make_file(rel, buf.str()));
  }

  const std::vector<violation> violations = run_lint(files);

  std::ostringstream report;
  for (const violation& v : violations) {
    report << v.file << ":" << v.line << ": " << v.rule << ": " << v.message
           << "\n";
  }
  std::size_t region_count = 0;
  std::size_t allow_count = 0;
  for (const source_file& f : files) {
    region_count += f.regions.size();
    allow_count += f.allows.size();
  }
  report << "mca_lint: " << files.size() << " files, " << region_count
         << " hot-path regions, " << allow_count << " suppressions, "
         << violations.size() << " violations\n";

  std::fputs(report.str().c_str(), stdout);
  if (!opts.report_path.empty()) {
    std::ofstream out{opts.report_path};
    out << report.str();
  }
  return violations.empty() ? 0 : 1;
}

// ---- self test -----------------------------------------------------------

/// Runs the rules against embedded known-bad snippets and checks each
/// expected (rule, hit-count) — the lint's own regression suite, wired as
/// a second ctest invocation of this binary.
int self_test() {
  struct expectation {
    std::string rule;
    int count = 0;
  };
  struct snippet_case {
    const char* name;
    std::vector<std::pair<std::string, std::string>> files;
    std::vector<expectation> expected;
  };

  const std::string hot_bad =
      "void f() {\n"
      "  // mca:hot-path-begin(demo)\n"
      "  auto* p = new int[4];\n"
      "  std::map<int, int> m;\n"
      "  std::function<void()> g;\n"
      "  std::mutex mu;\n"
      "  if (!p) throw 1;\n"
      "  printf(\"x\");\n"
      "  std::vector<int> local;\n"
      "  local.push_back(3);\n"
      "  // mca:hot-path-end\n"
      "}\n";
  const std::string hot_reserved =
      "#pragma once\n"
      "inline void g() {\n"
      "  // mca:hot-path-begin(ok)\n"
      "  std::vector<int> local;\n"
      "  local.reserve(8);\n"
      "  local.push_back(3);\n"
      "  member_.push_back(4);\n"
      "  // mca:hot-path-end\n"
      "}\n";
  const std::string det_bad =
      "#include <chrono>\n"
      "double now() {\n"
      "  (void)std::chrono::system_clock::now();\n"
      "  (void)time(nullptr);\n"
      "  return (double)rand();\n"
      "}\n"
      "std::unordered_map<int, int> table;\n"
      "int sum() {\n"
      "  int s = 0;\n"
      "  for (const auto& [k, v] : table) s += v;\n"
      "  return s;\n"
      "}\n";
  const std::string det_allowed =
      "// mca-lint: allow-file(det-wallclock) timing harness, wall time is "
      "the measurement\n"
      "#pragma once\n"
      "#include <chrono>\n"
      "inline double t() {\n"
      "  return std::chrono::steady_clock::now().time_since_epoch().count();\n"
      "}\n";
  const std::string hdr_bad =
      "#include <vector>\n"
      "using namespace std;\n"
      "inline int f() { return 1; }\n";
  const std::string suppress_no_reason =
      "void f() {\n"
      "  // mca:hot-path-begin(demo)\n"
      "  throw 1;  // mca-lint: allow(hot-throw)\n"
      "  // mca:hot-path-end\n"
      "}\n";
  const std::string suppress_ok =
      "void f() {\n"
      "  // mca:hot-path-begin(demo)\n"
      "  // mca-lint: allow(hot-throw) cold validation, fires once per bug\n"
      "  throw 1;\n"
      "  // mca:hot-path-end\n"
      "}\n";
  const std::string unbalanced =
      "void f() {\n"
      "  // mca:hot-path-begin(demo)\n"
      "}\n";
  const std::string hot_string =
      "void f(const std::string& name) {\n"
      "  // mca:hot-path-begin(demo)\n"
      "  std::string copy;\n"
      "  auto s = std::to_string(42);\n"
      "  const std::string& ref = name;\n"
      "  take(std::vector<std::string>{});\n"
      "  // mca:hot-path-end\n"
      "}\n";
  const std::string registry_h =
      "#pragma once\n"
      "enum class counter : int {\n"
      "  used_one,\n"
      "  dead_one,\n"
      "  count\n"
      "};\n";
  const std::string registry_cpp =
      "#include \"registry.h\"\n"
      "const char* name(counter c) { return \"used_one\"; }\n";
  const std::string registry_user =
      "void record() {\n"
      "  add(counter::used_one);\n"
      "  add(counter::typo_one);\n"
      "}\n";

  const std::string tracer_h =
      "#pragma once\n"
      "enum class span_kind : int {\n"
      "  used_span,\n"
      "  dead_span,\n"
      "  count\n"
      "};\n";
  const std::string tracer_cpp =
      "#include \"tracer.h\"\n"
      "const char* span_name(span_kind k) { return \"used_span\"; }\n";
  const std::string tracer_user =
      "void record() {\n"
      "  push(span_kind::used_span);\n"
      "  push(span_kind::typo_span);\n"
      "}\n";

  const std::vector<snippet_case> cases{
      {"hot-path bans fire",
       {{"src/demo/hot.cpp", hot_bad}},
       {{"hot-alloc", 2},
        {"hot-function", 1},
        {"hot-lock", 1},
        {"hot-throw", 1},
        {"hot-io", 1},
        {"hot-vector-growth", 1}}},
      {"reserved locals and member push_back pass",
       {{"src/demo/ok.h", hot_reserved}},
       {{"hot-vector-growth", 0}}},
      {"determinism bans fire in src/",
       {{"src/demo/det.cpp", det_bad}},
       {{"det-wallclock", 2}, {"det-random", 1}, {"det-unordered-iter", 1}}},
      {"determinism bans stay out of tests/",
       {{"tests/demo_det.cpp", det_bad}},
       {{"det-wallclock", 0}, {"det-random", 0}}},
      {"allow-file suppresses with a reason",
       {{"src/demo/clock.h", det_allowed}},
       {{"det-wallclock", 0}, {"bad-suppression", 0}}},
      {"header hygiene",
       {{"src/demo/bad.h", hdr_bad}},
       {{"hdr-guard", 1}, {"hdr-using-namespace", 1}}},
      {"allow without reason is rejected and suppresses nothing",
       {{"src/demo/sup.cpp", suppress_no_reason}},
       {{"bad-suppression", 1}, {"hot-throw", 1}}},
      {"own-line allow with reason covers the next line",
       {{"src/demo/sup_ok.cpp", suppress_ok}},
       {{"hot-throw", 0}, {"bad-suppression", 0}}},
      {"unbalanced hot region",
       {{"src/demo/unbalanced.cpp", unbalanced}},
       {{"hot-region", 1}}},
      {"string building fires in hot regions, references pass",
       {{"src/demo/strings.cpp", hot_string}},
       {{"hot-string-build", 2}}},
      {"obs cross-reference",
       {{"src/obs/registry.h", registry_h},
        {"src/obs/registry.cpp", registry_cpp},
        {"src/demo/user.cpp", registry_user}},
       {{"obs-dead-counter", 1},
        {"obs-unknown-counter", 1},
        {"obs-unnamed-counter", 1}}},
      {"span coverage: every span kind needs a recording site and a name",
       {{"src/obs/tracer.h", tracer_h},
        {"src/obs/tracer.cpp", tracer_cpp},
        {"src/demo/spans.cpp", tracer_user}},
       {{"obs-dead-span", 1},
        {"obs-unknown-span", 1},
        {"obs-unnamed-span", 1},
        {"obs-dead-counter", 0}}},
  };

  int failures = 0;
  for (const snippet_case& c : cases) {
    std::vector<source_file> files;
    for (const auto& [path, body] : c.files) {
      files.push_back(make_file(path, body));
    }
    const std::vector<violation> got = run_lint(files);
    for (const expectation& e : c.expected) {
      const long n = std::count_if(
          got.begin(), got.end(),
          [&](const violation& v) { return v.rule == e.rule; });
      if (n != e.count) {
        std::fprintf(stderr,
                     "self-test FAIL [%s]: rule %s fired %ld times, "
                     "expected %d\n",
                     c.name, e.rule.c_str(), n, e.count);
        for (const violation& v : got) {
          std::fprintf(stderr, "  got %s:%d: %s: %s\n", v.file.c_str(),
                       v.line, v.rule.c_str(), v.message.c_str());
        }
        ++failures;
      }
    }
  }
  if (failures == 0) {
    std::printf("mca_lint self-test: %zu cases OK\n", cases.size());
    return 0;
  }
  return 1;
}

}  // namespace
}  // namespace mca::lint

int main(int argc, char** argv) {
  mca::lint::lint_options opts;
  bool self_test = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--root" && i + 1 < argc) {
      opts.root = argv[++i];
    } else if (arg == "--report" && i + 1 < argc) {
      opts.report_path = argv[++i];
    } else if (arg == "--self-test") {
      self_test = true;
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: mca_lint [--root <dir>] [--report <file>] [--self-test]\n"
          "walks <dir>/{src,bench,tests,tools} and enforces project "
          "invariants;\nexits nonzero on violations.\n");
      return 0;
    } else {
      std::fprintf(stderr, "mca_lint: unknown argument '%s'\n", arg.c_str());
      return 2;
    }
  }
  if (self_test) return mca::lint::self_test();
  return mca::lint::scan_tree(opts);
}
