// Minimal C++ lexer for mca_lint: splits a translation unit into
// identifier/number/string/punctuation tokens and a separate comment
// stream, which is all the project-invariant rules need.  Deliberately not
// a real C++ front end — no preprocessing, no template parsing — so it
// stays dependency-free (no libclang) and fast enough to walk the whole
// tree on every ctest run.  The rules that build on it are written to
// tolerate its approximations (token-sequence matching, not semantics).
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace mca::lint {

enum class token_kind {
  identifier,
  number,
  string_literal,
  char_literal,
  punct,  ///< one character of operator/punctuation
};

struct token {
  token_kind kind = token_kind::punct;
  std::string text;      ///< literal spelling (quotes stripped for strings)
  int line = 0;          ///< 1-based
  std::size_t offset = 0;  ///< byte offset of the first character
};

/// A // or /* */ comment.  Directives (hot-path markers, allow
/// suppressions) live here; the token stream never sees them.
struct comment {
  std::string text;  ///< body without the comment markers, trimmed
  int line = 0;      ///< line the comment starts on
  bool own_line = false;  ///< nothing but whitespace precedes it
};

struct lex_result {
  std::vector<token> tokens;
  std::vector<comment> comments;
  int line_count = 0;
};

/// Tokenizes `source`.  Unterminated literals are closed at end of file
/// rather than reported — the compiler owns syntax errors, the linter
/// only needs a best-effort stream.
inline lex_result lex(std::string_view source) {
  lex_result out;
  std::size_t i = 0;
  const std::size_t n = source.size();
  int line = 1;
  bool line_has_code = false;

  auto push = [&](token_kind kind, std::size_t begin, std::size_t end) {
    token t;
    t.kind = kind;
    t.text.assign(source.substr(begin, end - begin));
    t.line = line;
    t.offset = begin;
    out.tokens.push_back(std::move(t));
    line_has_code = true;
  };
  auto is_ident_start = [](char c) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_';
  };
  auto is_ident = [&](char c) {
    return is_ident_start(c) || (c >= '0' && c <= '9');
  };
  auto trim = [](std::string s) {
    const auto b = s.find_first_not_of(" \t\r");
    if (b == std::string::npos) return std::string{};
    const auto e = s.find_last_not_of(" \t\r\n");
    return s.substr(b, e - b + 1);
  };

  while (i < n) {
    const char c = source[i];
    if (c == '\n') {
      ++line;
      line_has_code = false;
      ++i;
      continue;
    }
    if (c == ' ' || c == '\t' || c == '\r' || c == '\f' || c == '\v') {
      ++i;
      continue;
    }
    // Comments.
    if (c == '/' && i + 1 < n && source[i + 1] == '/') {
      const std::size_t begin = i + 2;
      std::size_t end = begin;
      while (end < n && source[end] != '\n') ++end;
      comment cm;
      cm.text = trim(std::string{source.substr(begin, end - begin)});
      cm.line = line;
      cm.own_line = !line_has_code;
      out.comments.push_back(std::move(cm));
      i = end;
      continue;
    }
    if (c == '/' && i + 1 < n && source[i + 1] == '*') {
      const int start_line = line;
      const bool own = !line_has_code;
      std::size_t end = i + 2;
      while (end + 1 < n && !(source[end] == '*' && source[end + 1] == '/')) {
        if (source[end] == '\n') ++line;
        ++end;
      }
      comment cm;
      cm.text = trim(std::string{source.substr(i + 2, end - (i + 2))});
      cm.line = start_line;
      cm.own_line = own;
      out.comments.push_back(std::move(cm));
      i = (end + 1 < n) ? end + 2 : n;
      continue;
    }
    // Raw string literal R"delim( ... )delim".
    if (c == 'R' && i + 1 < n && source[i + 1] == '"') {
      std::size_t d = i + 2;
      while (d < n && source[d] != '(') ++d;
      const std::string delim{source.substr(i + 2, d - (i + 2))};
      const std::string closer = ")" + delim + "\"";
      const std::size_t body = d + 1;
      const std::size_t close = source.find(closer, body);
      const std::size_t end = close == std::string_view::npos
                                  ? n
                                  : close + closer.size();
      const int start_line = line;
      for (std::size_t k = i; k < end && k < n; ++k) {
        if (source[k] == '\n') ++line;
      }
      token t;
      t.kind = token_kind::string_literal;
      t.text.assign(source.substr(body, (close == std::string_view::npos
                                             ? n
                                             : close) -
                                            body));
      t.line = start_line;
      t.offset = i;
      out.tokens.push_back(std::move(t));
      line_has_code = true;
      i = end;
      continue;
    }
    // String / char literals.
    if (c == '"' || c == '\'') {
      const char quote = c;
      std::size_t end = i + 1;
      while (end < n && source[end] != quote) {
        if (source[end] == '\\' && end + 1 < n) ++end;
        if (source[end] == '\n') ++line;
        ++end;
      }
      token t;
      t.kind = quote == '"' ? token_kind::string_literal
                            : token_kind::char_literal;
      t.text.assign(source.substr(i + 1, end - (i + 1)));
      t.line = line;
      t.offset = i;
      out.tokens.push_back(std::move(t));
      line_has_code = true;
      i = (end < n) ? end + 1 : n;
      continue;
    }
    // Identifiers / keywords.
    if (is_ident_start(c)) {
      std::size_t end = i + 1;
      while (end < n && is_ident(source[end])) ++end;
      push(token_kind::identifier, i, end);
      i = end;
      continue;
    }
    // Numbers (loose: digits plus any trailing alnum/./' chunk, enough to
    // skip 0x1p-3 and 1'000'000 without splitting them).
    if (c >= '0' && c <= '9') {
      std::size_t end = i + 1;
      while (end < n &&
             (is_ident(source[end]) || source[end] == '.' ||
              source[end] == '\'' ||
              ((source[end] == '+' || source[end] == '-') &&
               (source[end - 1] == 'e' || source[end - 1] == 'E' ||
                source[end - 1] == 'p' || source[end - 1] == 'P')))) {
        ++end;
      }
      push(token_kind::number, i, end);
      i = end;
      continue;
    }
    push(token_kind::punct, i, i + 1);
    ++i;
  }
  out.line_count = line;
  return out;
}

}  // namespace mca::lint
